//! Property tests for `obs::hist`: merge algebra, quantile bounds, and
//! top-bucket saturation.

use proptest::prelude::*;
use vpdift_obs::hist::{Hist, HistSpec};

/// A mixed bag of layouts: log2 and linear, varied sizes.
fn spec_strategy() -> impl Strategy<Value = HistSpec> {
    prop_oneof![
        (2usize..48).prop_map(HistSpec::log2),
        ((1u32..1_000), (2usize..48)).prop_map(|(w, n)| HistSpec::linear(u64::from(w), n)),
    ]
}

/// Values spanning many orders of magnitude (uniform u64 would almost
/// always saturate log2 layouts).
fn value_strategy() -> impl Strategy<Value = u64> {
    (any::<u64>(), 0u32..64).prop_map(|(v, shift)| v >> shift)
}

fn hist_of(spec: HistSpec, values: &[u64]) -> Hist {
    let mut h = Hist::new(spec);
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    /// Merge is commutative: a∪b == b∪a.
    #[test]
    fn merge_is_commutative(
        spec in spec_strategy(),
        a in proptest::strategy::vec(value_strategy(), 0..64),
        b in proptest::strategy::vec(value_strategy(), 0..64),
    ) {
        let (ha, hb) = (hist_of(spec, &a), hist_of(spec, &b));
        let mut ab = ha.clone();
        ab.merge(&hb).unwrap();
        let mut ba = hb.clone();
        ba.merge(&ha).unwrap();
        prop_assert_eq!(ab, ba);
    }

    /// Merge is associative: (a∪b)∪c == a∪(b∪c), and both equal
    /// recording every value into one histogram.
    #[test]
    fn merge_is_associative(
        spec in spec_strategy(),
        a in proptest::strategy::vec(value_strategy(), 0..48),
        b in proptest::strategy::vec(value_strategy(), 0..48),
        c in proptest::strategy::vec(value_strategy(), 0..48),
    ) {
        let (ha, hb, hc) = (hist_of(spec, &a), hist_of(spec, &b), hist_of(spec, &c));
        let mut left = ha.clone();
        left.merge(&hb).unwrap();
        left.merge(&hc).unwrap();
        let mut right_tail = hb.clone();
        right_tail.merge(&hc).unwrap();
        let mut right = ha.clone();
        right.merge(&right_tail).unwrap();
        prop_assert_eq!(&left, &right);

        let mut all: Vec<u64> = a.clone();
        all.extend(&b);
        all.extend(&c);
        prop_assert_eq!(&left, &hist_of(spec, &all));
    }

    /// Quantile estimates land inside the bucket holding the true
    /// quantile: lower <= exact <= estimate < upper (bucket error only).
    #[test]
    fn quantiles_are_within_bucket_error(
        spec in spec_strategy(),
        values in proptest::strategy::vec(value_strategy(), 1..128),
        qi in 0usize..3,
    ) {
        let q = [0.5, 0.99, 1.0][qi];
        let h = hist_of(spec, &values);
        let mut values = values;
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[rank - 1];

        let (lo, hi) = h.quantile_bounds(q);
        prop_assert!(lo <= exact, "exact {exact} below bucket floor {lo}");
        if let Some(hi) = hi {
            prop_assert!(exact < hi, "exact {exact} past bucket ceiling {hi}");
        }
        let est = h.quantile(q);
        prop_assert!(est >= lo);
        if let Some(hi) = hi {
            prop_assert!(est < hi);
        }
    }

    /// Every value at or past the top bucket's floor saturates into it;
    /// count and sum survive saturation.
    #[test]
    fn top_bucket_saturates(
        spec in spec_strategy(),
        raw in proptest::strategy::vec(any::<u64>(), 1..64),
    ) {
        let top = spec.buckets() - 1;
        let floor = spec.lower_bound(top);
        let values: Vec<u64> = raw.iter().map(|v| v | floor).collect();
        let h = hist_of(spec, &values);
        prop_assert_eq!(h.bucket(top), values.len() as u64);
        prop_assert_eq!(h.count(), values.len() as u64);
        let expect: u64 = values.iter().fold(0u64, |acc, &v| acc.saturating_add(v));
        prop_assert_eq!(h.sum(), expect);
        prop_assert_eq!(h.quantile(0.99), floor, "top-bucket estimate is its floor");
    }
}
