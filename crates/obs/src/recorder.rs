//! The standard sink: metrics + flight-recorder ring + provenance map,
//! with optional full event logging for the exporters.

use vpdift_core::{AtomTable, Tag, Violation};
use vpdift_kernel::SimTime;

use crate::disasm::RawInsn;
use crate::event::{CheckKind, ObsEvent};
use crate::metrics::Metrics;
use crate::provenance::ProvenanceMap;
use crate::ring::{EventRing, TimedEvent};
use crate::sink::{ObsSink, ATOM_SLOTS};

/// An [`ObsSink`] that aggregates metrics, keeps the last events in a
/// flight-recorder ring, tracks taint provenance, and (optionally) logs
/// every event for JSONL/Chrome-trace export.
#[derive(Debug, Clone)]
pub struct Recorder {
    now: SimTime,
    metrics: Metrics,
    ring: EventRing,
    provenance: ProvenanceMap,
    log: Option<Vec<TimedEvent>>,
    violations: Vec<Violation>,
}

impl Recorder {
    /// A recorder whose flight ring keeps the last `ring_capacity` events.
    pub fn new(ring_capacity: usize) -> Self {
        Recorder {
            now: SimTime::ZERO,
            metrics: Metrics::default(),
            ring: EventRing::new(ring_capacity),
            provenance: ProvenanceMap::default(),
            log: None,
            violations: Vec::new(),
        }
    }

    /// Additionally keeps *every* event in memory, for the exporters.
    /// Unbounded — intended for the short runs where export is wanted.
    #[must_use]
    pub fn with_event_log(mut self) -> Self {
        self.log = Some(Vec::new());
        self
    }

    /// Aggregated counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The flight-recorder ring.
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    /// Where each taint atom first entered the system.
    pub fn provenance(&self) -> &ProvenanceMap {
        &self.provenance
    }

    /// Violations observed, oldest first.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// The full event log (empty slice unless
    /// [`Recorder::with_event_log`] was used).
    pub fn events(&self) -> &[TimedEvent] {
        self.log.as_deref().unwrap_or(&[])
    }

    /// Renders the flight-recorder report for the *last* observed
    /// violation: the failed check, the provenance of every offending
    /// atom, and the recent event timeline with lazy disassembly.
    /// Returns `None` when no violation was observed.
    pub fn flight_report(&self, atoms: &AtomTable) -> Option<String> {
        use core::fmt::Write as _;
        let violation = self.violations.last()?;
        let (kind, site) = CheckKind::of_violation(&violation.kind);
        let mut out = String::new();
        let _ = writeln!(out, "== DIFT violation flight report ==");
        let _ = writeln!(out, "violation : {violation}");
        match site {
            Some(site) => {
                let _ = writeln!(out, "failed check: {kind} (site `{site}`)");
            }
            None => {
                let _ = writeln!(out, "failed check: {kind}");
            }
        }
        let _ = writeln!(
            out,
            "data tag  : {} = {}   (required clearance: {} = {})",
            violation.tag,
            atoms.describe(violation.tag),
            violation.required,
            atoms.describe(violation.required),
        );
        // The offending atoms are those the data carried beyond its
        // clearance; fall back to the whole tag if the subtraction is
        // empty (e.g. an empty-tag custom violation).
        let offending = {
            let excess = violation.tag.without(violation.required);
            if excess.is_empty() {
                violation.tag
            } else {
                excess
            }
        };
        let _ = writeln!(out, "taint provenance:");
        let mut any = false;
        for (atom, origin) in self.provenance.origins_of(offending) {
            any = true;
            let name = atoms.describe(Tag::atom(atom));
            let _ = write!(out, "  atom {atom} ({name}): classified by `{}`", origin.source);
            if let Some(addr) = origin.addr {
                let _ = write!(out, " at {addr:#010x}");
            }
            let _ = writeln!(out, ", t={}ns", origin.time.as_ns());
        }
        if !any {
            let _ = writeln!(out, "  (no classification event observed for the offending atoms)");
        }
        let _ = writeln!(
            out,
            "last {} of {} events before the violation:",
            self.ring.len(),
            self.ring.total_pushed()
        );
        for te in self.ring.iter() {
            let t = te.time.as_ns();
            match &te.event {
                ObsEvent::InsnRetired { pc, word, compressed, fetch_tag, instret } => {
                    let text = RawInsn::from_retired(*word, *compressed).disassemble();
                    let _ = write!(out, "  [{instret:>8}] {pc:#010x}: {text}");
                    if !fetch_tag.is_empty() {
                        let _ = write!(out, "   ; fetch tag {fetch_tag}");
                    }
                    let _ = writeln!(out);
                }
                ObsEvent::TagWrite { pc, reg, before, after } => {
                    let _ = writeln!(
                        out,
                        "      tag_write  x{reg} {before} -> {after} @ pc={pc:#010x}"
                    );
                }
                ObsEvent::Load { pc, addr, size, tag } => {
                    let _ = writeln!(
                        out,
                        "      load       {size}B @ {addr:#010x} tag {tag} (pc={pc:#010x})"
                    );
                }
                ObsEvent::Store { pc, addr, size, tag } => {
                    let _ = writeln!(
                        out,
                        "      store      {size}B @ {addr:#010x} tag {tag} (pc={pc:#010x})"
                    );
                }
                ObsEvent::Check { kind, tag, required, passed, site, .. } => {
                    let verdict = if *passed { "pass" } else { "FAIL" };
                    let site = site.as_deref().unwrap_or("-");
                    let _ = writeln!(
                        out,
                        "      check      {kind} [{site}] tag {tag} vs {required}: {verdict}"
                    );
                }
                ObsEvent::Violation(v) => {
                    let _ = writeln!(out, "      VIOLATION  {v}");
                }
                ObsEvent::Classify { source, tag, addr } => match addr {
                    Some(a) => {
                        let _ = writeln!(out, "      classify   `{source}` tag {tag} @ {a:#010x}");
                    }
                    None => {
                        let _ = writeln!(out, "      classify   `{source}` tag {tag}");
                    }
                },
                ObsEvent::Declassify { component, before, after } => {
                    let _ = writeln!(out, "      declassify `{component}` {before} -> {after}");
                }
                ObsEvent::Tlm { bus, target, addr, len, write, tag, ok } => {
                    let dir = if *write { "W" } else { "R" };
                    let status = if *ok { "ok" } else { "err" };
                    let _ = writeln!(
                        out,
                        "      tlm        {bus}->{target} {dir} {len}B @ {addr:#010x} tag {tag} {status} t={t}ns"
                    );
                }
                ObsEvent::Trap { pc, cause, irq } => {
                    let what = if *irq { "irq" } else { "trap" };
                    let _ = writeln!(out, "      {what}       cause={cause} @ pc={pc:#010x}");
                }
                ObsEvent::FaultInjected { site, kind, addr, detail } => {
                    let _ = write!(out, "      FAULT      {kind} @ `{site}`");
                    if let Some(a) = addr {
                        let _ = write!(out, " addr={a:#010x}");
                    }
                    let _ = writeln!(out, " detail={detail}");
                }
            }
        }
        Some(out)
    }
}

impl ObsSink for Recorder {
    fn event(&mut self, event: &ObsEvent) {
        self.metrics.update(event);
        match event {
            ObsEvent::Classify { source, tag, addr } => {
                self.provenance.classify(*tag, source, *addr, self.now);
            }
            ObsEvent::Violation(v) => self.violations.push(v.clone()),
            _ => {}
        }
        let timed = TimedEvent { time: self.now, event: event.clone() };
        if let Some(log) = &mut self.log {
            log.push(timed.clone());
        }
        self.ring.push(timed);
    }

    fn set_now(&mut self, now: SimTime) {
        self.now = now;
    }

    fn taint_spread(&mut self, counts: &[u32; ATOM_SLOTS]) {
        self.metrics.update_spread(counts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdift_core::ViolationKind;

    fn recorder_with_violation() -> Recorder {
        let mut r = Recorder::new(8).with_event_log();
        r.set_now(SimTime::from_ns(10));
        r.event(&ObsEvent::Classify {
            source: "key-region".into(),
            tag: Tag::atom(0),
            addr: Some(0x2000),
        });
        r.event(&ObsEvent::InsnRetired {
            pc: 0x40,
            word: 0x0000_0013,
            compressed: false,
            fetch_tag: Tag::EMPTY,
            instret: 1,
        });
        let v = Violation::new(
            ViolationKind::Output { sink: "uart.tx".into() },
            Tag::atom(0),
            Tag::EMPTY,
        )
        .at_pc(0x44);
        r.event(&ObsEvent::Check {
            kind: CheckKind::Output,
            tag: Tag::atom(0),
            required: Tag::EMPTY,
            pc: Some(0x44),
            passed: false,
            site: Some("uart.tx".into()),
        });
        r.event(&ObsEvent::Violation(v));
        r
    }

    #[test]
    fn flight_report_names_source_and_check() {
        let r = recorder_with_violation();
        let report = r.flight_report(&AtomTable::default()).expect("violation recorded");
        assert!(report.contains("failed check: output (site `uart.tx`)"), "{report}");
        assert!(report.contains("classified by `key-region` at 0x00002000"), "{report}");
        assert!(report.contains("0x00000040"), "retired instruction listed: {report}");
        assert!(report.contains("VIOLATION"), "{report}");
    }

    #[test]
    fn no_violation_no_report() {
        let mut r = Recorder::new(4);
        r.event(&ObsEvent::Trap { pc: 0, cause: 3, irq: false });
        assert!(r.flight_report(&AtomTable::default()).is_none());
        assert_eq!(r.metrics().traps, 1);
    }

    #[test]
    fn event_log_is_opt_in() {
        let mut r = Recorder::new(4);
        r.event(&ObsEvent::Trap { pc: 0, cause: 3, irq: false });
        assert!(r.events().is_empty());
        let mut r = Recorder::new(4).with_event_log();
        r.event(&ObsEvent::Trap { pc: 0, cause: 3, irq: false });
        assert_eq!(r.events().len(), 1);
    }
}
