//! The standard sink: metrics + flight-recorder ring + provenance map,
//! with optional full event logging for the exporters, an optional guest
//! profiler, and an optional `--explain` flow tracker.

use std::collections::HashMap;

use vpdift_core::{AtomTable, Tag, Violation};
use vpdift_kernel::SimTime;

use crate::disasm::RawInsn;
use crate::event::{CheckKind, ObsEvent};
use crate::flowgraph;
use crate::metrics::Metrics;
use crate::prof::{Profiler, SymbolMap};
use crate::provenance::{FlowDelta, Hop, HopKind, ProvenanceMap};
use crate::ring::{EventRing, TimedEvent};
use crate::sink::{ObsSink, ATOM_SLOTS};

/// An [`ObsSink`] that aggregates metrics, keeps the last events in a
/// flight-recorder ring, tracks taint provenance, and (optionally) logs
/// every event for JSONL/Chrome-trace export, profiles the guest
/// ([`Recorder::with_profiler`]), or records per-atom propagation hops
/// for `--explain`/flow-graph export ([`Recorder::with_explain`]).
#[derive(Debug, Clone)]
pub struct Recorder {
    now: SimTime,
    metrics: Metrics,
    ring: EventRing,
    provenance: ProvenanceMap,
    log: Option<Vec<TimedEvent>>,
    violations: Vec<Violation>,
    symbols: Option<SymbolMap>,
    prof: Option<Profiler>,
    explain: bool,
    /// pc → raw instruction bits of retired instructions, kept only in
    /// explain mode so hop PCs can be disassembled after the fact.
    /// Bounded by the number of distinct PCs in the program image.
    insn_words: HashMap<u32, (u32, bool)>,
}

impl Recorder {
    /// A recorder whose flight ring keeps the last `ring_capacity` events.
    pub fn new(ring_capacity: usize) -> Self {
        Recorder {
            now: SimTime::ZERO,
            metrics: Metrics::default(),
            ring: EventRing::new(ring_capacity),
            provenance: ProvenanceMap::default(),
            log: None,
            violations: Vec::new(),
            symbols: None,
            prof: None,
            explain: false,
            insn_words: HashMap::new(),
        }
    }

    /// Additionally keeps *every* event in memory, for the exporters.
    /// Unbounded — intended for the short runs where export is wanted.
    #[must_use]
    pub fn with_event_log(mut self) -> Self {
        self.log = Some(Vec::new());
        self
    }

    /// Attaches the guest program's symbol map, used by the profiler and
    /// `--explain` renderer. Call before [`Recorder::with_profiler`].
    #[must_use]
    pub fn with_symbols(mut self, symbols: SymbolMap) -> Self {
        self.symbols = Some(symbols);
        self
    }

    /// Enables the guest profiler (per-PC histogram, call/return shadow
    /// stack, TLM latency histograms), attributing against the symbol
    /// map set by [`Recorder::with_symbols`].
    #[must_use]
    pub fn with_profiler(mut self) -> Self {
        self.prof = Some(Profiler::new(self.symbols.clone().unwrap_or_default()));
        self
    }

    /// Enables flow tracking for `--explain` and the DOT/JSON flow-graph
    /// exporters: tagged loads/stores/register writes/TLM transactions
    /// become provenance hops, violations become sinks, and retired
    /// instruction bits are kept for later disassembly.
    #[must_use]
    pub fn with_explain(mut self) -> Self {
        self.explain = true;
        self
    }

    /// Additionally queues incremental flow-graph changes as
    /// [`FlowDelta`]s, drained with [`Recorder::take_flow_deltas`] — the
    /// live-streaming complement of [`Recorder::with_explain`] (which it
    /// implies: deltas only exist where flow tracking records hops).
    #[must_use]
    pub fn with_flow_deltas(mut self) -> Self {
        self.explain = true;
        self.provenance.enable_deltas();
        self
    }

    /// Removes and returns queued flow-graph deltas (always empty unless
    /// [`Recorder::with_flow_deltas`] was used).
    pub fn take_flow_deltas(&mut self) -> Vec<FlowDelta> {
        self.provenance.take_deltas()
    }

    /// Aggregated counters.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The flight-recorder ring.
    pub fn ring(&self) -> &EventRing {
        &self.ring
    }

    /// Where each taint atom first entered the system.
    pub fn provenance(&self) -> &ProvenanceMap {
        &self.provenance
    }

    /// Violations observed, oldest first.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// The full event log (empty slice unless
    /// [`Recorder::with_event_log`] was used).
    pub fn events(&self) -> &[TimedEvent] {
        self.log.as_deref().unwrap_or(&[])
    }

    /// The guest profiler, when [`Recorder::with_profiler`] enabled it.
    pub fn profiler(&self) -> Option<&Profiler> {
        self.prof.as_ref()
    }

    /// The attached symbol map, when one was supplied.
    pub fn symbols(&self) -> Option<&SymbolMap> {
        self.symbols.as_ref()
    }

    /// `true` when flow tracking ([`Recorder::with_explain`]) is on.
    pub fn explain_enabled(&self) -> bool {
        self.explain
    }

    /// The offending atoms of a violation: what the data carried beyond
    /// its clearance, falling back to the whole tag when the subtraction
    /// is empty (e.g. an empty-tag custom violation).
    fn offending(violation: &Violation) -> Tag {
        let excess = violation.tag.without(violation.required);
        if excess.is_empty() {
            violation.tag
        } else {
            excess
        }
    }

    /// Renders the shortest recorded source→sink flow path for the last
    /// violation — the `--explain` output. `None` when no violation was
    /// observed or nothing was recorded about its atoms (e.g. flow
    /// tracking was off).
    pub fn explain(&self, atoms: &AtomTable) -> Option<String> {
        use core::fmt::Write as _;
        let violation = self.violations.last()?;
        let offending = Self::offending(violation);
        let path = self.provenance.shortest_path(offending)?;
        let mut out = String::new();
        let _ = writeln!(out, "== taint flow explanation ==");
        let _ = writeln!(out, "violation : {violation}");
        let _ = writeln!(
            out,
            "offending : {} = {} ({} atom(s) recorded; showing shortest path)",
            offending,
            atoms.describe(offending),
            offending.atoms().filter(|&a| self.provenance.path(a).is_some()).count(),
        );
        let insn_of = |pc: u32| self.insn_words.get(&pc).copied();
        out.push_str(&flowgraph::render_path(&path, atoms, self.symbols.as_ref(), &insn_of));
        Some(out)
    }

    /// Writes the recorded flow graph as Graphviz DOT.
    ///
    /// # Errors
    /// Propagates I/O errors from `w`.
    pub fn write_flow_dot<W: std::io::Write>(
        &self,
        w: &mut W,
        atoms: &AtomTable,
    ) -> std::io::Result<()> {
        flowgraph::write_dot(w, &self.provenance, atoms, self.symbols.as_ref())
    }

    /// Writes the recorded flow graph as `taintvp-flow/v1` JSON.
    ///
    /// # Errors
    /// Propagates I/O errors from `w`.
    pub fn write_flow_json<W: std::io::Write>(
        &self,
        w: &mut W,
        atoms: &AtomTable,
    ) -> std::io::Result<()> {
        flowgraph::write_json(w, &self.provenance, atoms, self.symbols.as_ref())
    }

    /// Folds one event into the provenance DAG (explain mode only).
    fn track_flow(&mut self, event: &ObsEvent) {
        match event {
            ObsEvent::InsnRetired { pc, word, compressed, .. } => {
                self.insn_words.insert(*pc, (*word, *compressed));
            }
            ObsEvent::TagWrite { pc, reg, after, .. } if !after.is_empty() => {
                self.provenance.record_hop(
                    *after,
                    Hop {
                        kind: HopKind::Reg(*reg),
                        pc: Some(*pc),
                        addr: None,
                        time: self.now,
                        repeats: 1,
                    },
                );
            }
            ObsEvent::Load { pc, addr, tag, .. } if !tag.is_empty() => {
                self.provenance.record_hop(
                    *tag,
                    Hop {
                        kind: HopKind::Load,
                        pc: Some(*pc),
                        addr: Some(*addr),
                        time: self.now,
                        repeats: 1,
                    },
                );
            }
            ObsEvent::Store { pc, addr, tag, .. } if !tag.is_empty() => {
                self.provenance.record_hop(
                    *tag,
                    Hop {
                        kind: HopKind::Store,
                        pc: Some(*pc),
                        addr: Some(*addr),
                        time: self.now,
                        repeats: 1,
                    },
                );
            }
            ObsEvent::Tlm { bus, target, addr, tag, .. } if !tag.is_empty() => {
                self.provenance.record_hop(
                    *tag,
                    Hop {
                        kind: HopKind::Tlm { bus: bus.clone(), target: target.clone() },
                        pc: None,
                        addr: Some(*addr),
                        time: self.now,
                        repeats: 1,
                    },
                );
            }
            ObsEvent::Violation(v) => {
                let (kind, site) = CheckKind::of_violation(&v.kind);
                let site = site.unwrap_or(kind.label());
                self.provenance.record_sink(Self::offending(v), site, v.pc, self.now);
            }
            _ => {}
        }
    }

    /// Renders the flight-recorder report for the *last* observed
    /// violation: the failed check, the provenance of every offending
    /// atom, and the recent event timeline with lazy disassembly.
    /// Returns `None` when no violation was observed.
    pub fn flight_report(&self, atoms: &AtomTable) -> Option<String> {
        use core::fmt::Write as _;
        let violation = self.violations.last()?;
        let (kind, site) = CheckKind::of_violation(&violation.kind);
        let mut out = String::new();
        let _ = writeln!(out, "== DIFT violation flight report ==");
        let _ = writeln!(out, "violation : {violation}");
        match site {
            Some(site) => {
                let _ = writeln!(out, "failed check: {kind} (site `{site}`)");
            }
            None => {
                let _ = writeln!(out, "failed check: {kind}");
            }
        }
        let _ = writeln!(
            out,
            "data tag  : {} = {}   (required clearance: {} = {})",
            violation.tag,
            atoms.describe(violation.tag),
            violation.required,
            atoms.describe(violation.required),
        );
        let offending = Self::offending(violation);
        let _ = writeln!(out, "taint provenance:");
        let mut any = false;
        for (atom, origin) in self.provenance.origins_of(offending) {
            any = true;
            let name = atoms.describe(Tag::atom(atom));
            let _ = write!(out, "  atom {atom} ({name}): classified by `{}`", origin.source);
            if let Some(addr) = origin.addr {
                let _ = write!(out, " at {addr:#010x}");
            }
            let _ = writeln!(out, ", t={}ns", origin.time.as_ns());
        }
        if !any {
            let _ = writeln!(out, "  (no classification event observed for the offending atoms)");
        }
        let _ = writeln!(
            out,
            "last {} of {} events before the violation:",
            self.ring.len(),
            self.ring.total_pushed()
        );
        for te in self.ring.iter() {
            let t = te.time.as_ns();
            match &te.event {
                ObsEvent::InsnRetired { pc, word, compressed, fetch_tag, instret } => {
                    let text = RawInsn::from_retired(*word, *compressed).disassemble();
                    let _ = write!(out, "  [{instret:>8}] {pc:#010x}: {text}");
                    if !fetch_tag.is_empty() {
                        let _ = write!(out, "   ; fetch tag {fetch_tag}");
                    }
                    let _ = writeln!(out);
                }
                ObsEvent::TagWrite { pc, reg, before, after } => {
                    let _ = writeln!(
                        out,
                        "      tag_write  x{reg} {before} -> {after} @ pc={pc:#010x}"
                    );
                }
                ObsEvent::Load { pc, addr, size, tag } => {
                    let _ = writeln!(
                        out,
                        "      load       {size}B @ {addr:#010x} tag {tag} (pc={pc:#010x})"
                    );
                }
                ObsEvent::Store { pc, addr, size, tag } => {
                    let _ = writeln!(
                        out,
                        "      store      {size}B @ {addr:#010x} tag {tag} (pc={pc:#010x})"
                    );
                }
                ObsEvent::Check { kind, tag, required, passed, site, .. } => {
                    let verdict = if *passed { "pass" } else { "FAIL" };
                    let site = site.as_deref().unwrap_or("-");
                    let _ = writeln!(
                        out,
                        "      check      {kind} [{site}] tag {tag} vs {required}: {verdict}"
                    );
                }
                ObsEvent::Violation(v) => {
                    let _ = writeln!(out, "      VIOLATION  {v}");
                }
                ObsEvent::TagSetChange { site, before, after } => {
                    let _ = writeln!(out, "      tag_set    `{site}` {before} -> {after}");
                }
                ObsEvent::Classify { source, tag, addr } => match addr {
                    Some(a) => {
                        let _ = writeln!(out, "      classify   `{source}` tag {tag} @ {a:#010x}");
                    }
                    None => {
                        let _ = writeln!(out, "      classify   `{source}` tag {tag}");
                    }
                },
                ObsEvent::Declassify { component, before, after } => {
                    let _ = writeln!(out, "      declassify `{component}` {before} -> {after}");
                }
                ObsEvent::Tlm { bus, target, addr, len, write, tag, ok, lat_ps } => {
                    let dir = if *write { "W" } else { "R" };
                    let status = if *ok { "ok" } else { "err" };
                    let _ = writeln!(
                        out,
                        "      tlm        {bus}->{target} {dir} {len}B @ {addr:#010x} tag {tag} {status} lat={lat_ps}ps t={t}ns"
                    );
                }
                ObsEvent::Trap { pc, cause, irq } => {
                    let what = if *irq { "irq" } else { "trap" };
                    let _ = writeln!(out, "      {what}       cause={cause} @ pc={pc:#010x}");
                }
                ObsEvent::FaultInjected { site, kind, addr, detail } => {
                    let _ = write!(out, "      FAULT      {kind} @ `{site}`");
                    if let Some(a) = addr {
                        let _ = write!(out, " addr={a:#010x}");
                    }
                    let _ = writeln!(out, " detail={detail}");
                }
                ObsEvent::EngineCache {
                    hits,
                    misses,
                    invalidations,
                    flushes,
                    idle_steps,
                    checked_steps,
                } => {
                    let _ = writeln!(
                        out,
                        "      engine     block-cache {hits} hits / {misses} misses, {invalidations} invalidations, {flushes} flushes, {idle_steps} idle / {checked_steps} checked steps"
                    );
                }
            }
        }
        Some(out)
    }
}

impl ObsSink for Recorder {
    fn event(&mut self, event: &ObsEvent) {
        self.metrics.update(event);
        if self.explain {
            self.track_flow(event);
        }
        if let Some(prof) = &mut self.prof {
            prof.on_event(event);
        }
        match event {
            ObsEvent::Classify { source, tag, addr } => {
                self.provenance.classify(*tag, source, *addr, self.now);
            }
            ObsEvent::Violation(v) => self.violations.push(v.clone()),
            _ => {}
        }
        let timed = TimedEvent { time: self.now, event: event.clone() };
        if let Some(log) = &mut self.log {
            log.push(timed.clone());
        }
        self.ring.push(timed);
    }

    fn set_now(&mut self, now: SimTime) {
        self.now = now;
    }

    fn taint_spread(&mut self, counts: &[u32; ATOM_SLOTS]) {
        self.metrics.update_spread(counts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdift_core::ViolationKind;

    fn recorder_with_violation() -> Recorder {
        let mut r = Recorder::new(8).with_event_log();
        r.set_now(SimTime::from_ns(10));
        r.event(&ObsEvent::Classify {
            source: "key-region".into(),
            tag: Tag::atom(0),
            addr: Some(0x2000),
        });
        r.event(&ObsEvent::InsnRetired {
            pc: 0x40,
            word: 0x0000_0013,
            compressed: false,
            fetch_tag: Tag::EMPTY,
            instret: 1,
        });
        let v = Violation::new(
            ViolationKind::Output { sink: "uart.tx".into() },
            Tag::atom(0),
            Tag::EMPTY,
        )
        .at_pc(0x44);
        r.event(&ObsEvent::Check {
            kind: CheckKind::Output,
            tag: Tag::atom(0),
            required: Tag::EMPTY,
            pc: Some(0x44),
            passed: false,
            site: Some("uart.tx".into()),
        });
        r.event(&ObsEvent::Violation(v));
        r
    }

    #[test]
    fn flight_report_names_source_and_check() {
        let r = recorder_with_violation();
        let report = r.flight_report(&AtomTable::default()).expect("violation recorded");
        assert!(report.contains("failed check: output (site `uart.tx`)"), "{report}");
        assert!(report.contains("classified by `key-region` at 0x00002000"), "{report}");
        assert!(report.contains("0x00000040"), "retired instruction listed: {report}");
        assert!(report.contains("VIOLATION"), "{report}");
    }

    #[test]
    fn no_violation_no_report() {
        let mut r = Recorder::new(4);
        r.event(&ObsEvent::Trap { pc: 0, cause: 3, irq: false });
        assert!(r.flight_report(&AtomTable::default()).is_none());
        assert_eq!(r.metrics().traps, 1);
    }

    #[test]
    fn explain_renders_source_hops_and_sink() {
        let symbols = SymbolMap::from_symbols([(0x40u32, "leak_loop".to_owned())]);
        let mut r = Recorder::new(8).with_symbols(symbols).with_explain();
        r.set_now(SimTime::from_ns(10));
        r.event(&ObsEvent::Classify {
            source: "pin".into(),
            tag: Tag::atom(0),
            addr: Some(0x2000),
        });
        // lbu t0, 0(s0) = 0x00044283: tagged load then tag write, retired.
        r.event(&ObsEvent::Load { pc: 0x40, addr: 0x2000, size: 1, tag: Tag::atom(0) });
        r.event(&ObsEvent::TagWrite { pc: 0x40, reg: 5, before: Tag::EMPTY, after: Tag::atom(0) });
        r.event(&ObsEvent::InsnRetired {
            pc: 0x40,
            word: 0x0004_4283,
            compressed: false,
            fetch_tag: Tag::EMPTY,
            instret: 1,
        });
        let v = Violation::new(
            ViolationKind::Output { sink: "uart.tx".into() },
            Tag::atom(0),
            Tag::EMPTY,
        )
        .at_pc(0x44);
        r.event(&ObsEvent::Violation(v));

        let atoms = AtomTable::from_names(["pin"]);
        let text = r.explain(&atoms).expect("flow recorded");
        assert!(text.contains("source  pin @0x2000"), "{text}");
        assert!(text.contains("<leak_loop>"), "symbolized hop: {text}");
        assert!(text.contains("lbu"), "hop disassembly: {text}");
        assert!(text.contains("sink    uart.tx"), "{text}");

        let mut dot = Vec::new();
        r.write_flow_dot(&mut dot, &atoms).unwrap();
        assert!(String::from_utf8(dot).unwrap().contains("sink: uart.tx"));
        let mut json = Vec::new();
        r.write_flow_json(&mut json, &atoms).unwrap();
        crate::export::validate_json(&String::from_utf8(json).unwrap()).unwrap();
    }

    #[test]
    fn explain_is_none_without_flow_tracking() {
        let r = recorder_with_violation();
        // No with_explain: no hops, but classification still recorded, so
        // the shortest path degenerates to source+sink only.
        let text = r.explain(&AtomTable::default());
        assert!(text.is_some(), "origin alone still explains");
        let r2 = Recorder::new(4);
        assert!(r2.explain(&AtomTable::default()).is_none(), "no violation, no explanation");
    }

    #[test]
    fn profiler_rides_the_event_stream() {
        let mut r = Recorder::new(4)
            .with_symbols(SymbolMap::from_symbols([(0u32, "main".to_owned())]))
            .with_profiler();
        r.event(&ObsEvent::InsnRetired {
            pc: 0x0,
            word: 0x0000_0013,
            compressed: false,
            fetch_tag: Tag::EMPTY,
            instret: 1,
        });
        let prof = r.profiler().expect("enabled");
        assert_eq!(prof.insns(), 1);
        assert_eq!(prof.flat()[0].0, "main");
    }

    #[test]
    fn event_log_is_opt_in() {
        let mut r = Recorder::new(4);
        r.event(&ObsEvent::Trap { pc: 0, cause: 3, irq: false });
        assert!(r.events().is_empty());
        let mut r = Recorder::new(4).with_event_log();
        r.event(&ObsEvent::Trap { pc: 0, cause: 3, irq: false });
        assert_eq!(r.events().len(), 1);
    }
}
