//! The sink abstraction: where observability events go.
//!
//! Mirrors the ISS's `TaintMode` pattern: layers are generic over an
//! [`ObsSink`] whose `ENABLED` constant lets every emission site be written
//! as `if S::ENABLED { … }`. With the default [`NullSink`] that block is
//! dead code and the hot paths compile exactly as before the observability
//! layer existed.

use vpdift_core::Tag;
use vpdift_kernel::SimTime;

use vpdift_sync::Shared;

use crate::event::ObsEvent;

/// Number of per-atom slots in spread samples (one per [`Tag`] atom).
pub const ATOM_SLOTS: usize = Tag::CAPACITY as usize;

/// A consumer of observability events.
///
/// Implementations should be cheap: emission sites sit on simulation hot
/// paths and call [`ObsSink::event`] synchronously. Sinks are `Send` so a
/// VP (which owns its sink graph outright) can migrate between fleet
/// worker threads.
pub trait ObsSink: Send + Sync + 'static {
    /// `false` compiles all emission sites out (see [`NullSink`]).
    const ENABLED: bool = true;

    /// Consumes one event.
    fn event(&mut self, event: &ObsEvent);

    /// Updates the sink's notion of simulated time. Called by the platform
    /// at quantum boundaries; events between two calls are stamped with
    /// the earlier time (quantum-granular timestamps).
    fn set_now(&mut self, _now: SimTime) {}

    /// Receives a sampled per-atom count of classified RAM bytes (the
    /// platform samples periodically; sinks typically keep the maximum).
    fn taint_spread(&mut self, _counts: &[u32; ATOM_SLOTS]) {}
}

/// The default sink: drops everything, `ENABLED = false`, so emission
/// sites vanish at compile time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl ObsSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn event(&mut self, _event: &ObsEvent) {}
}

/// Object-safe mirror of [`ObsSink`] for components that cannot be generic
/// over the sink type (peripherals behind `dyn TlmTarget`, the TLM
/// routers, the engine observer). Blanket-implemented for every sink.
pub trait DynObs: Send + Sync {
    /// See [`ObsSink::event`].
    fn dyn_event(&mut self, event: &ObsEvent);
}

impl<S: ObsSink> DynObs for S {
    fn dyn_event(&mut self, event: &ObsEvent) {
        self.event(event);
    }
}

/// A shared dynamic sink handle, as handed to peripherals and routers.
pub type SharedObs = Shared<dyn DynObs>;

/// Coerces a shared concrete sink into the dynamic handle peripherals
/// take.
pub fn shared_obs<S: ObsSink>(sink: &Shared<S>) -> SharedObs {
    sink.clone()
}

/// An optional [`SharedObs`] with a `Debug` impl, for embedding in
/// components that derive `Debug`. Detached by default; emission through a
/// detached handle is a no-op.
#[derive(Clone, Default)]
pub struct ObsHandle(Option<SharedObs>);

impl ObsHandle {
    /// Attaches a sink.
    pub fn attach(&mut self, obs: SharedObs) {
        self.0 = Some(obs);
    }

    /// `true` when a sink is attached.
    pub fn is_attached(&self) -> bool {
        self.0.is_some()
    }

    /// Emits `event` into the attached sink, if any.
    pub fn emit(&self, event: &ObsEvent) {
        if let Some(obs) = &self.0 {
            obs.borrow_mut().dyn_event(event);
        }
    }
}

impl std::fmt::Debug for ObsHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() { "ObsHandle(attached)" } else { "ObsHandle(detached)" })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counting(usize);

    impl ObsSink for Counting {
        fn event(&mut self, _event: &ObsEvent) {
            self.0 += 1;
        }
    }

    #[test]
    fn null_sink_is_disabled() {
        const { assert!(!NullSink::ENABLED) };
        // Still callable (emission sites may skip the guard in cold code).
        NullSink.event(&ObsEvent::Trap { pc: 0, cause: 3, irq: false });
    }

    #[test]
    fn dynamic_handle_reaches_concrete_sink() {
        let sink = vpdift_sync::shared(Counting::default());
        let dynamic = shared_obs(&sink);
        dynamic.borrow_mut().dyn_event(&ObsEvent::Trap { pc: 0, cause: 3, irq: false });
        assert_eq!(sink.borrow().0, 1);
    }
}
