//! # vpdift-obs — cross-layer observability for the DIFT VP
//!
//! A zero-cost-when-disabled event layer threaded through every VP
//! component: the ISS emits instruction/tag/check events, the TLM routers
//! emit transaction events, peripherals emit classification and
//! declassification events, and the DIFT engine reports its check sites
//! through the [`FlowObserver`] hook re-exported from `vpdift-core`.
//!
//! The design mirrors the ISS's `TaintMode` pattern: components are
//! generic over an [`ObsSink`] whose `ENABLED` constant guards every
//! emission site, so with the default [`NullSink`] the instrumented hot
//! paths compile to exactly the un-instrumented code (Table II overheads
//! are unaffected when observability is off).
//!
//! The standard sink is the [`Recorder`]: aggregated [`Metrics`], a
//! fixed-capacity flight-recorder ring ([`EventRing`]), taint provenance
//! ([`ProvenanceMap`]), and an optional full event log feeding the
//! [`export`] writers (JSON Lines and Chrome trace format). After a
//! violation, [`Recorder::flight_report`] renders the last events with
//! lazy disassembly, the failed check, and the classification site each
//! offending atom originally came from.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod disasm;
mod event;
pub mod expo;
pub mod export;
pub mod flowgraph;
pub mod hist;
mod metrics;
pub mod prof;
mod provenance;
mod recorder;
mod ring;
pub mod scrape;
mod sink;
pub mod stream;

use vpdift_core::{FlowObserver, SharedFlowObserver, Tag, Violation, ViolationKind};
use vpdift_sync::{shared, Shared};

pub use disasm::RawInsn;
pub use event::{CheckKind, ObsEvent};
pub use expo::Expo;
pub use hist::{AtomicHist, BucketKind, Hist, HistError, HistSpec};
pub use metrics::{CheckCounter, EngineCacheStats, Metrics};
pub use prof::{Profiler, SymbolMap, TlmStat};
pub use provenance::{FlowDelta, FlowPath, Hop, HopKind, Origin, ProvenanceMap, SinkRec, HOP_CAP};
pub use recorder::Recorder;
pub use ring::{EventRing, TimedEvent};
pub use scrape::{MetricsServer, ScrapeError};
pub use sink::{shared_obs, DynObs, NullSink, ObsHandle, ObsSink, SharedObs, ATOM_SLOTS};
pub use stream::{
    BreakHit, BreakKind, BreakSet, Breakpoint, InsnCell, StopFlag, StreamItem, StreamSink, Watch,
    WatchKind,
};

/// Adapts an [`ObsSink`] to the engine's [`FlowObserver`] hook: engine
/// check sites become [`ObsEvent::Check`]s and recorded violations become
/// [`ObsEvent::Violation`]s.
pub struct EngineObserverAdapter<S: ObsSink> {
    sink: Shared<S>,
}

impl<S: ObsSink> EngineObserverAdapter<S> {
    /// Wraps `sink` for attachment via `DiftEngine::set_observer`.
    pub fn new(sink: Shared<S>) -> Self {
        EngineObserverAdapter { sink }
    }
}

impl<S: ObsSink> FlowObserver for EngineObserverAdapter<S> {
    fn on_check(
        &mut self,
        kind: &ViolationKind,
        tag: Tag,
        required: Tag,
        pc: Option<u32>,
        passed: bool,
    ) {
        let (kind, site) = CheckKind::of_violation(kind);
        self.sink.borrow_mut().event(&ObsEvent::Check {
            kind,
            tag,
            required,
            pc,
            passed,
            site: site.map(str::to_owned),
        });
    }

    fn on_violation(&mut self, violation: &Violation) {
        self.sink.borrow_mut().event(&ObsEvent::Violation(violation.clone()));
    }

    fn on_tag_change(&mut self, site: &str, before: Tag, after: Tag) {
        self.sink.borrow_mut().event(&ObsEvent::TagSetChange {
            site: site.to_owned(),
            before,
            after,
        });
    }
}

/// Convenience: wraps a shared sink as the engine-side observer handle.
pub fn engine_observer<S: ObsSink>(sink: &Shared<S>) -> SharedFlowObserver {
    shared(EngineObserverAdapter::new(sink.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdift_core::{DiftEngine, SecurityPolicy};

    #[test]
    fn engine_checks_flow_into_the_sink() {
        let policy = SecurityPolicy::builder("t").sink("uart.tx", Tag::EMPTY).build();
        let mut engine = DiftEngine::new(policy);
        let sink = shared(Recorder::new(8));
        engine.set_observer(engine_observer(&sink));

        assert!(engine.check_output("uart.tx", Tag::EMPTY, None).is_ok());
        assert!(engine.check_output("uart.tx", Tag::atom(0), Some(0x40)).is_err());

        let r = sink.borrow();
        let m = r.metrics();
        assert_eq!(m.checks[CheckKind::Output.index()].performed, 2);
        assert_eq!(m.checks[CheckKind::Output.index()].failed, 1);
        assert_eq!(m.violations, 1);
        assert_eq!(r.violations().len(), 1);
    }
}
