//! Reusable bucketed histograms: lock-free recording, mergeable
//! snapshots, quantile estimation.
//!
//! Two flavours share one bucket layout ([`HistSpec`]):
//!
//! - [`Hist`] — a plain value type for single-threaded recording and for
//!   *snapshots*: it merges ([`Hist::merge`] is associative and
//!   commutative), serializes, and estimates quantiles.
//! - [`AtomicHist`] — a lock-free recorder for hot paths shared across
//!   threads: [`AtomicHist::record`] is two relaxed `fetch_add`s, never a
//!   lock, and [`AtomicHist::snapshot`] yields a `Hist`.
//!
//! Layouts are log2 (bucket `i >= 1` covers `[2^(i-1), 2^i)`, bucket 0
//! is the zero value — the same shape the TLM latency histogram in
//! [`crate::prof`] has always used) or linear (`[i*w, (i+1)*w)`). The
//! top bucket saturates: every value at or past its lower bound lands
//! there, so recording can never index out of range.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket layout family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BucketKind {
    /// Bucket 0 holds the value `0`; bucket `i >= 1` covers
    /// `[2^(i-1), 2^i)`.
    Log2,
    /// Bucket `i` covers `[i*width, (i+1)*width)`.
    Linear {
        /// Bucket width (at least 1).
        width: u64,
    },
}

/// A bucket layout: kind plus bucket count. Two histograms are mergeable
/// exactly when their specs are equal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSpec {
    kind: BucketKind,
    buckets: usize,
}

impl HistSpec {
    /// A log2 layout with `buckets` buckets (clamped to at least 2).
    pub fn log2(buckets: usize) -> HistSpec {
        HistSpec { kind: BucketKind::Log2, buckets: buckets.max(2) }
    }

    /// A linear layout of `buckets` buckets of `width` each (both
    /// clamped to at least 2 / 1).
    pub fn linear(width: u64, buckets: usize) -> HistSpec {
        HistSpec { kind: BucketKind::Linear { width: width.max(1) }, buckets: buckets.max(2) }
    }

    /// The layout family.
    pub fn kind(&self) -> BucketKind {
        self.kind
    }

    /// Number of buckets.
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// The bucket `value` lands in. Saturates at the top bucket.
    pub fn bucket_of(&self, value: u64) -> usize {
        match self.kind {
            BucketKind::Log2 => {
                if value == 0 {
                    0
                } else {
                    ((u64::BITS - value.leading_zeros()) as usize).min(self.buckets - 1)
                }
            }
            BucketKind::Linear { width } => ((value / width) as usize).min(self.buckets - 1),
        }
    }

    /// Smallest value belonging to bucket `i` (0 for bucket 0).
    pub fn lower_bound(&self, i: usize) -> u64 {
        match self.kind {
            BucketKind::Log2 => {
                if i == 0 {
                    0
                } else {
                    1u64.checked_shl(i as u32 - 1).unwrap_or(u64::MAX)
                }
            }
            BucketKind::Linear { width } => width.saturating_mul(i as u64),
        }
    }

    /// First value *past* bucket `i`, or `None` for the saturating top
    /// bucket (which is unbounded above).
    pub fn upper_bound(&self, i: usize) -> Option<u64> {
        if i + 1 >= self.buckets {
            return None;
        }
        Some(self.lower_bound(i + 1))
    }
}

/// Why two histograms could not merge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistError {
    /// The bucket layouts differ; counts are not comparable.
    SpecMismatch,
}

impl core::fmt::Display for HistError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HistError::SpecMismatch => write!(f, "histogram bucket layouts differ"),
        }
    }
}

impl std::error::Error for HistError {}

/// A plain bucketed histogram: the value/snapshot type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    spec: HistSpec,
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Hist {
    /// An empty histogram with `spec`.
    pub fn new(spec: HistSpec) -> Hist {
        Hist { spec, buckets: vec![0; spec.buckets()], count: 0, sum: 0 }
    }

    /// The bucket layout.
    pub fn spec(&self) -> HistSpec {
        self.spec
    }

    /// Records one observation of `value`.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        self.buckets[self.spec.bucket_of(value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Count in bucket `i` (0 out of range).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Folds `other` into `self`. Associative and commutative: any merge
    /// tree over the same snapshots yields the same histogram. Fails
    /// (without mutating `self`) when the specs differ.
    pub fn merge(&mut self, other: &Hist) -> Result<(), HistError> {
        if self.spec != other.spec {
            return Err(HistError::SpecMismatch);
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        Ok(())
    }

    /// Bucket bounds `(lower, upper)` containing quantile `q` in
    /// `[0, 1]`: the true quantile value lies in `[lower, upper)`
    /// (`upper` is `None` for the unbounded top bucket). Returns the
    /// zero bucket's bounds when empty.
    pub fn quantile_bounds(&self, q: f64) -> (u64, Option<u64>) {
        let i = self.quantile_bucket(q);
        (self.spec.lower_bound(i), self.spec.upper_bound(i))
    }

    /// Point estimate for quantile `q` in `[0, 1]`: the inclusive upper
    /// edge of the containing bucket (its lower bound for the unbounded
    /// top bucket), so the error is at most the bucket width. 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let i = self.quantile_bucket(q);
        match self.spec.upper_bound(i) {
            Some(up) => up - 1,
            None => self.spec.lower_bound(i),
        }
    }

    /// Index of the bucket holding the `q`-quantile observation.
    fn quantile_bucket(&self, q: f64) -> usize {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation, 1-based; q=0 maps to the first.
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return i;
            }
        }
        self.buckets.len() - 1
    }

    /// Mean observed value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Indexing sugar: `hist[i]` is the count in bucket `i`.
impl core::ops::Index<usize> for Hist {
    type Output = u64;
    fn index(&self, i: usize) -> &u64 {
        &self.buckets[i]
    }
}

/// A lock-free histogram recorder for hot paths shared across threads.
///
/// [`record`](AtomicHist::record) is two relaxed `fetch_add`s — no lock,
/// no CAS loop — so concurrent recorders never contend beyond the cache
/// line. Relaxed ordering means a [`snapshot`](AtomicHist::snapshot)
/// taken mid-storm may be a few observations behind (and `count`/`sum`
/// momentarily skewed by in-flight records); terminal snapshots taken
/// after recording stops are exact.
#[derive(Debug)]
pub struct AtomicHist {
    spec: HistSpec,
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl AtomicHist {
    /// An empty recorder with `spec`.
    pub fn new(spec: HistSpec) -> AtomicHist {
        let buckets = (0..spec.buckets()).map(|_| AtomicU64::new(0)).collect();
        AtomicHist { spec, buckets, count: AtomicU64::new(0), sum: AtomicU64::new(0) }
    }

    /// The bucket layout.
    pub fn spec(&self) -> HistSpec {
        self.spec
    }

    /// Records one observation of `value` (relaxed; lock-free).
    pub fn record(&self, value: u64) {
        self.buckets[self.spec.bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// A point-in-time copy as a plain, mergeable [`Hist`].
    pub fn snapshot(&self) -> Hist {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        Hist {
            spec: self.spec,
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_bucket_boundaries() {
        let s = HistSpec::log2(32);
        assert_eq!(s.bucket_of(0), 0);
        assert_eq!(s.bucket_of(1), 1);
        assert_eq!(s.bucket_of(2), 2);
        assert_eq!(s.bucket_of(3), 2);
        assert_eq!(s.bucket_of(4), 3);
        assert_eq!(s.bucket_of(u64::MAX), 31, "saturates at the top bucket");
        assert_eq!(s.lower_bound(0), 0);
        assert_eq!(s.lower_bound(1), 1);
        assert_eq!(s.lower_bound(7), 64);
        assert_eq!(s.upper_bound(7), Some(128));
        assert_eq!(s.upper_bound(31), None, "top bucket is unbounded");
    }

    #[test]
    fn linear_bucket_boundaries() {
        let s = HistSpec::linear(10, 4);
        assert_eq!(s.bucket_of(0), 0);
        assert_eq!(s.bucket_of(9), 0);
        assert_eq!(s.bucket_of(10), 1);
        assert_eq!(s.bucket_of(35), 3);
        assert_eq!(s.bucket_of(1_000_000), 3, "saturates");
        assert_eq!(s.lower_bound(2), 20);
        assert_eq!(s.upper_bound(2), Some(30));
        assert_eq!(s.upper_bound(3), None);
    }

    #[test]
    fn record_and_merge_agree_with_bulk_recording() {
        let spec = HistSpec::log2(16);
        let mut a = Hist::new(spec);
        let mut b = Hist::new(spec);
        let mut all = Hist::new(spec);
        for v in [0u64, 1, 3, 200, 9_999] {
            a.record(v);
            all.record(v);
        }
        for v in [7u64, 7, 4_096] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b).unwrap();
        assert_eq!(a, all);
        assert_eq!(a.count(), 8);
        assert_eq!(a.sum(), 1 + 3 + 200 + 9_999 + 7 + 7 + 4_096);
    }

    #[test]
    fn merge_rejects_spec_mismatch_without_mutating() {
        let mut a = Hist::new(HistSpec::log2(8));
        a.record(5);
        let before = a.clone();
        let b = Hist::new(HistSpec::linear(10, 8));
        assert_eq!(a.merge(&b), Err(HistError::SpecMismatch));
        assert_eq!(a, before);
    }

    #[test]
    fn quantile_is_within_bucket_bounds() {
        let mut h = Hist::new(HistSpec::log2(32));
        for v in 1..=1000u64 {
            h.record(v);
        }
        // True p50 = 500 (bucket [512..1024) holds ranks 512.., so p50's
        // bucket is [256, 512)); the estimate must bracket it.
        let (lo, hi) = h.quantile_bounds(0.5);
        assert!(lo <= 500 && 500 < hi.unwrap(), "p50 in [{lo}, {hi:?})");
        let p50 = h.quantile(0.5);
        assert!(p50 >= lo && hi.map(|u| p50 < u).unwrap_or(true));
        let (lo, hi) = h.quantile_bounds(0.99);
        assert!(lo <= 990 && 990 < hi.unwrap(), "p99 in [{lo}, {hi:?})");
    }

    #[test]
    fn quantile_of_empty_is_zero() {
        let h = Hist::new(HistSpec::log2(8));
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile_bounds(0.99), (0, Some(1)));
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn atomic_hist_snapshot_matches_plain() {
        let spec = HistSpec::linear(100, 8);
        let at = AtomicHist::new(spec);
        let mut plain = Hist::new(spec);
        for v in [0u64, 50, 150, 420, 99_999] {
            at.record(v);
            plain.record(v);
        }
        assert_eq!(at.snapshot(), plain);
    }

    #[test]
    fn atomic_hist_concurrent_records_all_land() {
        use std::sync::Arc;
        let at = Arc::new(AtomicHist::new(HistSpec::log2(16)));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let at = Arc::clone(&at);
            handles.push(std::thread::spawn(move || {
                for i in 0..1000u64 {
                    at.record(t * 1000 + i);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let snap = at.snapshot();
        assert_eq!(snap.count(), 4000);
        assert_eq!(snap.buckets().iter().sum::<u64>(), 4000);
    }

    #[test]
    fn top_bucket_saturation_preserves_count() {
        let mut h = Hist::new(HistSpec::log2(4));
        for v in [8u64, 100, u64::MAX, 1 << 40] {
            h.record(v);
        }
        assert_eq!(h.bucket(3), 4, "all land in the top bucket");
        assert_eq!(h.count(), 4);
        assert_eq!(h.quantile(0.99), h.spec().lower_bound(3));
    }
}
