//! The flight recorder's fixed-capacity event ring.

use vpdift_kernel::SimTime;

use crate::event::ObsEvent;

/// An event with the simulated time it was observed at.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedEvent {
    /// Simulated time (quantum-granular; see [`crate::ObsSink::set_now`]).
    pub time: SimTime,
    /// The event.
    pub event: ObsEvent,
}

/// A fixed-capacity ring buffer keeping the most recent events. Push is
/// O(1); once full, each push evicts the oldest entry.
#[derive(Debug, Clone)]
pub struct EventRing {
    slots: Vec<TimedEvent>,
    capacity: usize,
    /// Index of the oldest entry once the ring has wrapped.
    head: usize,
    /// Total pushes ever (so callers can tell how much was evicted).
    pushed: u64,
}

impl EventRing {
    /// Creates a ring holding at most `capacity` events (capacity 0 keeps
    /// nothing).
    pub fn new(capacity: usize) -> Self {
        EventRing { slots: Vec::with_capacity(capacity.min(4096)), capacity, head: 0, pushed: 0 }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently retained events.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Total events ever pushed (including evicted ones).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Appends an event, evicting the oldest when full.
    pub fn push(&mut self, event: TimedEvent) {
        self.pushed += 1;
        if self.capacity == 0 {
            return;
        }
        if self.slots.len() < self.capacity {
            self.slots.push(event);
        } else {
            self.slots[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// Iterates the retained events oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &TimedEvent> {
        let (newer, older) = self.slots.split_at(self.head);
        older.iter().chain(newer.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(pc: u32) -> TimedEvent {
        TimedEvent {
            time: SimTime::from_ns(pc as u64),
            event: ObsEvent::Trap { pc, cause: 0, irq: false },
        }
    }

    fn pcs(ring: &EventRing) -> Vec<u32> {
        ring.iter()
            .map(|e| match e.event {
                ObsEvent::Trap { pc, .. } => pc,
                _ => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn keeps_everything_below_capacity() {
        let mut r = EventRing::new(4);
        for pc in 0..3 {
            r.push(ev(pc));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(pcs(&r), vec![0, 1, 2]);
        assert_eq!(r.total_pushed(), 3);
    }

    #[test]
    fn wraparound_keeps_newest_in_order() {
        let mut r = EventRing::new(4);
        for pc in 0..11 {
            r.push(ev(pc));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(pcs(&r), vec![7, 8, 9, 10], "oldest evicted, order preserved");
        assert_eq!(r.total_pushed(), 11);
        // Keep pushing exactly to a wrap boundary.
        r.push(ev(11));
        assert_eq!(pcs(&r), vec![8, 9, 10, 11]);
    }

    #[test]
    fn zero_capacity_retains_nothing() {
        let mut r = EventRing::new(0);
        r.push(ev(1));
        assert!(r.is_empty());
        assert_eq!(r.total_pushed(), 1);
    }
}
