//! Lazy disassembly of raw fetched instruction bits.
//!
//! Hot paths record only the raw bits; rendering happens when a trace line
//! or flight report is actually produced. The text forms match the legacy
//! eager disassembler in `vpdift-soc` exactly.

use vpdift_asm::{decompress, is_compressed, Insn};

/// Raw instruction bits as captured at fetch time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RawInsn {
    /// A full 32-bit instruction word.
    Word(u32),
    /// A lone 16-bit parcel (compressed instruction, or a fetch truncated
    /// at the end of RAM).
    Half(u16),
    /// The fetch address was outside modeled memory; carries the PC.
    Unavailable(u32),
}

impl RawInsn {
    /// Reconstructs the capture from an `InsnRetired` event's fields.
    pub fn from_retired(word: u32, compressed: bool) -> Self {
        if compressed {
            RawInsn::Half(word as u16)
        } else {
            RawInsn::Word(word)
        }
    }

    /// Renders the instruction as the tracer would: decoded text,
    /// `(c) …` for compressed forms, or `.half`/`.word`/`.???` fallbacks
    /// for undecodable bits.
    pub fn disassemble(self) -> String {
        match self {
            RawInsn::Half(h) if is_compressed(h) => decompress(h)
                .map(|i| format!("(c) {i}"))
                .unwrap_or_else(|_| format!(".half {h:#06x}")),
            RawInsn::Half(h) => format!(".half {h:#06x}"),
            RawInsn::Word(w) => Insn::decode(w)
                .map(|i| i.to_string())
                .unwrap_or_else(|_| format!(".word {w:#010x}")),
            RawInsn::Unavailable(pc) => format!(".??? @{pc:#010x} (outside RAM)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_each_form() {
        // addi x0, x0, 0 (the canonical nop) must decode, not fall back.
        let nop = RawInsn::Word(0x0000_0013).disassemble();
        assert!(nop == "nop" || nop.contains("addi"), "got {nop:?}");
        // c.li a0, 5.
        assert!(RawInsn::Half(0x4515).disassemble().starts_with("(c) addi a0"));
        // All-ones is not a valid encoding in either width.
        assert_eq!(RawInsn::Word(0xFFFF_FFFF).disassemble(), ".word 0xffffffff");
        assert_eq!(RawInsn::Unavailable(0x40).disassemble(), ".??? @0x00000040 (outside RAM)");
    }

    #[test]
    fn from_retired_selects_width() {
        assert_eq!(RawInsn::from_retired(0x4515, true), RawInsn::Half(0x4515));
        assert_eq!(RawInsn::from_retired(0x0000_0013, false), RawInsn::Word(0x13));
    }
}
