//! Event export: JSON Lines and the Chrome trace event format.
//!
//! Hand-rolled serialization — the workspace is offline, so no serde.
//! [`validate_json`] is a minimal structural JSON checker used by the
//! exporter tests (and available to downstream tests).

use std::io::{self, Write};

use vpdift_core::Tag;

use crate::event::{CheckKind, ObsEvent};
use crate::metrics::Metrics;
use crate::ring::TimedEvent;

/// Escapes `s` for inclusion inside a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a tag as a JSON array of its atom indices.
pub fn tag_json(tag: Tag) -> String {
    let atoms: Vec<String> = tag.atoms().map(|a| a.to_string()).collect();
    format!("[{}]", atoms.join(","))
}

fn opt_u32(v: Option<u32>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".into(),
    }
}

/// Renders one event's payload fields (no braces, no timestamp). Shared
/// with the serve protocol, which wraps the same fields in its own
/// streaming envelope.
pub fn event_fields(event: &ObsEvent) -> String {
    match event {
        ObsEvent::InsnRetired { pc, word, compressed, fetch_tag, instret } => format!(
            "\"pc\":{pc},\"word\":{word},\"compressed\":{compressed},\"fetch_tag\":{},\"instret\":{instret}",
            tag_json(*fetch_tag)
        ),
        ObsEvent::TagWrite { pc, reg, before, after } => format!(
            "\"pc\":{pc},\"reg\":{reg},\"before\":{},\"after\":{}",
            tag_json(*before),
            tag_json(*after)
        ),
        ObsEvent::Load { pc, addr, size, tag } => {
            format!("\"pc\":{pc},\"addr\":{addr},\"size\":{size},\"tag\":{}", tag_json(*tag))
        }
        ObsEvent::Store { pc, addr, size, tag } => {
            format!("\"pc\":{pc},\"addr\":{addr},\"size\":{size},\"tag\":{}", tag_json(*tag))
        }
        ObsEvent::Check { kind, tag, required, pc, passed, site } => format!(
            "\"check\":\"{}\",\"tag\":{},\"required\":{},\"pc\":{},\"passed\":{passed},\"site\":{}",
            kind.label(),
            tag_json(*tag),
            tag_json(*required),
            opt_u32(*pc),
            match site {
                Some(s) => format!("\"{}\"", escape(s)),
                None => "null".into(),
            }
        ),
        ObsEvent::Violation(v) => format!(
            "\"violation\":\"{}\",\"tag\":{},\"required\":{},\"pc\":{}",
            escape(&v.kind.to_string()),
            tag_json(v.tag),
            tag_json(v.required),
            opt_u32(v.pc)
        ),
        ObsEvent::TagSetChange { site, before, after } => format!(
            "\"site\":\"{}\",\"before\":{},\"after\":{}",
            escape(site),
            tag_json(*before),
            tag_json(*after)
        ),
        ObsEvent::Classify { source, tag, addr } => format!(
            "\"source\":\"{}\",\"tag\":{},\"addr\":{}",
            escape(source),
            tag_json(*tag),
            opt_u32(*addr)
        ),
        ObsEvent::Declassify { component, before, after } => format!(
            "\"component\":\"{}\",\"before\":{},\"after\":{}",
            escape(component),
            tag_json(*before),
            tag_json(*after)
        ),
        ObsEvent::Tlm { bus, target, addr, len, write, tag, ok, lat_ps } => format!(
            "\"bus\":\"{}\",\"target\":\"{}\",\"addr\":{addr},\"len\":{len},\"write\":{write},\"tag\":{},\"ok\":{ok},\"lat_ps\":{lat_ps}",
            escape(bus),
            escape(target),
            tag_json(*tag)
        ),
        ObsEvent::Trap { pc, cause, irq } => format!("\"pc\":{pc},\"cause\":{cause},\"irq\":{irq}"),
        ObsEvent::FaultInjected { site, kind, addr, detail } => format!(
            "\"site\":\"{}\",\"fault\":\"{}\",\"addr\":{},\"detail\":{detail}",
            escape(site),
            escape(kind),
            opt_u32(*addr)
        ),
        ObsEvent::EngineCache { hits, misses, invalidations, flushes, idle_steps, checked_steps } => format!(
            "\"hits\":{hits},\"misses\":{misses},\"invalidations\":{invalidations},\"flushes\":{flushes},\"idle_steps\":{idle_steps},\"checked_steps\":{checked_steps}"
        ),
    }
}

/// Writes the events as JSON Lines: one object per line with `t_ps`
/// (simulated picoseconds), `kind`, and the event's payload fields.
///
/// # Errors
/// Propagates I/O errors from `w`.
pub fn write_jsonl<W: Write>(mut w: W, events: &[TimedEvent]) -> io::Result<()> {
    for te in events {
        writeln!(
            w,
            "{{\"t_ps\":{},\"kind\":\"{}\",{}}}",
            te.time.as_ps(),
            te.event.label(),
            event_fields(&te.event)
        )?;
    }
    Ok(())
}

/// Writes the events in the Chrome trace event format (load the file in
/// `chrome://tracing` or Perfetto). Each event becomes an instant event
/// with its simulated time mapped to the trace's microsecond timeline.
///
/// # Errors
/// Propagates I/O errors from `w`.
pub fn write_chrome_trace<W: Write>(mut w: W, events: &[TimedEvent]) -> io::Result<()> {
    writeln!(w, "{{\"traceEvents\":[")?;
    for (i, te) in events.iter().enumerate() {
        let sep = if i + 1 == events.len() { "" } else { "," };
        // ts is a double in microseconds; simulated ps / 1e6.
        let ts = te.time.as_ps() as f64 / 1e6;
        writeln!(
            w,
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"g\",\"pid\":1,\"tid\":1,\"ts\":{ts},\"args\":{{{}}}}}{sep}",
            te.event.label(),
            event_fields(&te.event)
        )?;
    }
    writeln!(w, "],\"displayTimeUnit\":\"ns\"}}")?;
    Ok(())
}

/// Writes the full metrics registry as one `taintvp-metrics/v1` JSON
/// document, including the block-cache counters when a caching engine ran
/// (so cache behaviour is machine-readable, not just a CLI summary line).
///
/// # Errors
/// Propagates I/O errors from `w`.
pub fn write_metrics_json<W: Write>(w: W, m: &Metrics) -> io::Result<()> {
    write_metrics_json_ext(w, m, &[])
}

/// [`write_metrics_json`] with extra top-level members appended after
/// the registry fields — the additive extension point of the
/// `taintvp-metrics/v1` schema (e.g. the fleet runner's `"fleet"` block
/// with per-outcome-class counts and per-worker telemetry). Each entry
/// is `(key, value)` where `value` must be pre-rendered valid JSON;
/// consumers ignore members they do not know.
///
/// # Errors
/// Propagates I/O errors from `w`.
pub fn write_metrics_json_ext<W: Write>(
    mut w: W,
    m: &Metrics,
    extra: &[(&str, &str)],
) -> io::Result<()> {
    writeln!(w, "{{")?;
    writeln!(w, "  \"schema\": \"taintvp-metrics/v1\",")?;
    writeln!(w, "  \"instructions\": {},", m.instructions)?;
    writeln!(
        w,
        "  \"loads\": {{\"tagged\": {}, \"untagged\": {}}},",
        m.tagged_loads, m.untagged_loads
    )?;
    writeln!(
        w,
        "  \"stores\": {{\"tagged\": {}, \"untagged\": {}}},",
        m.tagged_stores, m.untagged_stores
    )?;
    writeln!(w, "  \"tag_writes\": {},", m.tag_writes)?;
    writeln!(w, "  \"checks\": {{")?;
    writeln!(w, "    \"total\": {},", m.total_checks())?;
    for kind in CheckKind::ALL {
        let c = m.checks[kind.index()];
        let sep = if kind.index() + 1 == CheckKind::COUNT { "" } else { "," };
        writeln!(
            w,
            "    \"{}\": {{\"performed\": {}, \"failed\": {}}}{sep}",
            kind.label(),
            c.performed,
            c.failed
        )?;
    }
    writeln!(w, "  }},")?;
    writeln!(w, "  \"classifications\": {},", m.classifications)?;
    writeln!(w, "  \"declassifications\": {},", m.declassifications)?;
    writeln!(w, "  \"traps\": {},", m.traps)?;
    writeln!(w, "  \"violations\": {},", m.violations)?;
    writeln!(w, "  \"tag_set_changes\": {},", m.tag_set_changes)?;
    writeln!(w, "  \"faults_injected\": {},", m.faults_injected)?;
    match &m.engine_cache {
        Some(ec) => writeln!(
            w,
            "  \"engine_cache\": {{\"hits\": {}, \"misses\": {}, \"invalidations\": {}, \"flushes\": {}, \"idle_steps\": {}, \"checked_steps\": {}}},",
            ec.hits, ec.misses, ec.invalidations, ec.flushes, ec.idle_steps, ec.checked_steps
        )?,
        None => writeln!(w, "  \"engine_cache\": null,")?,
    }
    let tlm: Vec<String> =
        m.tlm_per_target.iter().map(|(target, n)| format!("\"{}\": {n}", escape(target))).collect();
    writeln!(w, "  \"tlm_per_target\": {{{}}},", tlm.join(", "))?;
    let spread: Vec<String> = m
        .taint_high_water
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(atom, &c)| format!("\"{atom}\": {c}"))
        .collect();
    match extra {
        [] => writeln!(w, "  \"taint_high_water\": {{{}}}", spread.join(", "))?,
        _ => {
            writeln!(w, "  \"taint_high_water\": {{{}}},", spread.join(", "))?;
            for (i, (key, value)) in extra.iter().enumerate() {
                let sep = if i + 1 == extra.len() { "" } else { "," };
                writeln!(w, "  \"{}\": {value}{sep}", escape(key))?;
            }
        }
    }
    writeln!(w, "}}")?;
    Ok(())
}

/// Minimal structural JSON validator: checks the input is one
/// syntactically well-formed JSON value. Used by the exporter tests;
/// not a full parser (numbers are checked loosely).
///
/// # Errors
/// A description of the first syntax problem found.
pub fn validate_json(input: &str) -> Result<(), String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", c as char, *pos))
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        _ => Err(format!("expected a value at byte {}", *pos)),
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'{')?;
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'[')?;
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'"')?;
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => *pos += 2,
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    if *pos == start {
        Err(format!("expected a number at byte {start}"))
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdift_kernel::SimTime;

    fn sample_events() -> Vec<TimedEvent> {
        vec![
            TimedEvent {
                time: SimTime::from_ns(10),
                event: ObsEvent::Classify {
                    source: "key \"quoted\"".into(),
                    tag: Tag::from_bits(0b101),
                    addr: Some(0x2000),
                },
            },
            TimedEvent {
                time: SimTime::from_ns(20),
                event: ObsEvent::Tlm {
                    bus: "sys-bus".into(),
                    target: "uart".into(),
                    addr: 0x1000_0000,
                    len: 1,
                    write: true,
                    tag: Tag::atom(0),
                    ok: false,
                    lat_ps: 20_000,
                },
            },
        ]
    }

    #[test]
    fn jsonl_lines_are_valid_json() {
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &sample_events()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            validate_json(line).unwrap_or_else(|e| panic!("{e}: {line}"));
        }
        assert!(text.contains("\"kind\":\"classify\""));
        assert!(text.contains("\\\"quoted\\\""), "string escaping applied");
        assert!(text.contains("\"tag\":[0,2]"));
    }

    #[test]
    fn chrome_trace_is_one_valid_json_document() {
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &sample_events()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        validate_json(&text).unwrap_or_else(|e| panic!("{e}: {text}"));
        assert!(text.contains("\"traceEvents\""));
        assert!(text.contains("\"ts\":0.01"), "10ns == 0.01µs: {text}");
    }

    #[test]
    fn metrics_json_is_valid_and_carries_cache_stats() {
        let mut m = Metrics { instructions: 42, ..Metrics::default() };
        m.update(&ObsEvent::EngineCache {
            hits: 100,
            misses: 3,
            invalidations: 2,
            flushes: 1,
            idle_steps: 60,
            checked_steps: 40,
        });
        m.update(&ObsEvent::TagSetChange {
            site: "uart.tx".into(),
            before: Tag::EMPTY,
            after: Tag::atom(0),
        });
        let mut buf = Vec::new();
        write_metrics_json(&mut buf, &m).unwrap();
        let text = String::from_utf8(buf).unwrap();
        validate_json(&text).unwrap_or_else(|e| panic!("{e}: {text}"));
        assert!(text.contains("\"schema\": \"taintvp-metrics/v1\""));
        assert!(text.contains("\"hits\": 100"));
        assert!(text.contains("\"checked_steps\": 40"));
        assert!(text.contains("\"tag_set_changes\": 1"));

        // Interpreter runs export an explicit null cache block.
        let mut buf = Vec::new();
        write_metrics_json(&mut buf, &Metrics::default()).unwrap();
        let text = String::from_utf8(buf).unwrap();
        validate_json(&text).unwrap();
        assert!(text.contains("\"engine_cache\": null"));
    }

    #[test]
    fn metrics_json_ext_appends_extra_members() {
        let mut buf = Vec::new();
        write_metrics_json_ext(
            &mut buf,
            &Metrics::default(),
            &[("fleet", "{\"done\":3}"), ("note", "\"x\"")],
        )
        .unwrap();
        let text = String::from_utf8(buf).unwrap();
        validate_json(&text).unwrap_or_else(|e| panic!("{e}: {text}"));
        assert!(text.contains("\"fleet\": {\"done\":3}"), "{text}");
        assert!(text.contains("\"note\": \"x\""), "{text}");
        assert!(text.contains("\"schema\": \"taintvp-metrics/v1\""), "schema unchanged");
    }

    #[test]
    fn validator_rejects_malformed_input() {
        assert!(validate_json("{\"a\":1}").is_ok());
        assert!(validate_json("{\"a\":}").is_err());
        assert!(validate_json("[1,2,]").is_err());
        assert!(validate_json("{} trailing").is_err());
        assert!(validate_json("\"unterminated").is_err());
    }

    #[test]
    fn empty_event_list_exports_cleanly() {
        let mut buf = Vec::new();
        write_chrome_trace(&mut buf, &[]).unwrap();
        validate_json(&String::from_utf8(buf).unwrap()).unwrap();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &[]).unwrap();
        assert!(buf.is_empty());
    }
}
