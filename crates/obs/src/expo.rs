//! Prometheus text exposition (hand-rolled, offline, zero-dep).
//!
//! [`Expo`] builds a `text/plain; version=0.0.4` document: `# HELP` /
//! `# TYPE` headers are emitted once per metric name, label values are
//! escaped per the format spec, and [`Hist`] snapshots render as
//! cumulative `_bucket{le=...}` series plus `_sum`/`_count`. The output
//! is deterministic: series appear exactly in the order the builder was
//! fed.
//!
//! [`render_metrics`] exposes the whole [`Metrics`] registry under a
//! caller-chosen prefix and label set — the same counters `--metrics`
//! prints, machine-readable.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use crate::event::CheckKind;
use crate::hist::Hist;
use crate::metrics::Metrics;

/// A label set: `(name, value)` pairs. Values are escaped on render.
pub type Labels<'a> = &'a [(&'a str, &'a str)];

/// Builder for one exposition document.
#[derive(Debug, Default)]
pub struct Expo {
    out: String,
    seen: BTreeSet<String>,
}

impl Expo {
    /// An empty document.
    pub fn new() -> Expo {
        Expo::default()
    }

    /// Emits `# HELP` / `# TYPE` once per metric name.
    fn header(&mut self, name: &str, help: &str, ty: &str) {
        if self.seen.insert(name.to_owned()) {
            let _ = writeln!(self.out, "# HELP {name} {}", escape_help(help));
            let _ = writeln!(self.out, "# TYPE {name} {ty}");
        }
    }

    /// Appends a counter sample. Counter names should end in `_total`.
    pub fn counter(&mut self, name: &str, help: &str, labels: Labels<'_>, value: u64) {
        self.header(name, help, "counter");
        let _ = writeln!(self.out, "{name}{} {value}", render_labels(labels));
    }

    /// Appends a gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: Labels<'_>, value: f64) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.out, "{name}{} {}", render_labels(labels), fmt_value(value));
    }

    /// Appends a [`Hist`] as a Prometheus histogram: cumulative
    /// `_bucket{le=...}` series (bucket upper bounds multiplied by
    /// `scale` — e.g. `1e-6` to expose a microsecond histogram in
    /// seconds), then `_sum` and `_count`.
    pub fn histogram(
        &mut self,
        name: &str,
        help: &str,
        labels: Labels<'_>,
        hist: &Hist,
        scale: f64,
    ) {
        self.header(name, help, "histogram");
        let spec = hist.spec();
        let mut cumulative = 0u64;
        for (i, &n) in hist.buckets().iter().enumerate() {
            cumulative += n;
            let le = match spec.upper_bound(i) {
                Some(up) => fmt_value(up as f64 * scale),
                None => "+Inf".to_owned(),
            };
            let mut with_le: Vec<(&str, &str)> = labels.to_vec();
            with_le.push(("le", &le));
            let _ = writeln!(self.out, "{name}_bucket{} {cumulative}", render_labels(&with_le));
        }
        let _ = writeln!(
            self.out,
            "{name}_sum{} {}",
            render_labels(labels),
            fmt_value(hist.sum() as f64 * scale)
        );
        let _ = writeln!(self.out, "{name}_count{} {}", render_labels(labels), hist.count());
    }

    /// The finished document.
    pub fn finish(self) -> String {
        self.out
    }
}

/// Renders `{k="v",...}` with escaped values (empty string for no
/// labels).
fn render_labels(labels: Labels<'_>) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    format!("{{{}}}", body.join(","))
}

/// Escapes a label value: backslash, double quote, newline.
fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Escapes HELP text: backslash and newline.
fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Renders a sample value: integral floats print without a fraction so
/// counters stay exact-looking; everything else uses shortest-float.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

/// Exposes the [`Metrics`] registry under `prefix` (e.g. `vp`) with
/// `labels` on every series.
pub fn render_metrics(expo: &mut Expo, prefix: &str, labels: Labels<'_>, m: &Metrics) {
    let name = |suffix: &str| format!("{prefix}_{suffix}");
    expo.counter(&name("instructions_total"), "Instructions retired.", labels, m.instructions);
    for kind in CheckKind::ALL {
        let c = m.checks[kind.index()];
        if c.performed == 0 {
            continue;
        }
        let mut with_kind: Vec<(&str, &str)> = labels.to_vec();
        with_kind.push(("kind", kind.label()));
        expo.counter(&name("checks_total"), "Clearance checks evaluated.", &with_kind, c.performed);
        expo.counter(
            &name("check_failures_total"),
            "Clearance checks failed.",
            &with_kind,
            c.failed,
        );
    }
    for (tagged, loads, stores) in
        [("true", m.tagged_loads, m.tagged_stores), ("false", m.untagged_loads, m.untagged_stores)]
    {
        let mut with_tag: Vec<(&str, &str)> = labels.to_vec();
        with_tag.push(("tagged", tagged));
        expo.counter(&name("loads_total"), "Loads observed.", &with_tag, loads);
        expo.counter(&name("stores_total"), "Stores observed.", &with_tag, stores);
    }
    expo.counter(&name("tag_writes_total"), "Tag-changing register writes.", labels, m.tag_writes);
    for (target, n) in &m.tlm_per_target {
        let mut with_target: Vec<(&str, &str)> = labels.to_vec();
        with_target.push(("target", target));
        expo.counter(&name("tlm_transactions_total"), "TLM transactions.", &with_target, *n);
    }
    expo.counter(
        &name("classifications_total"),
        "Classification events.",
        labels,
        m.classifications,
    );
    expo.counter(
        &name("declassifications_total"),
        "Declassification events.",
        labels,
        m.declassifications,
    );
    expo.counter(&name("violations_total"), "Policy violations recorded.", labels, m.violations);
    expo.counter(&name("traps_total"), "Traps and interrupts taken.", labels, m.traps);
    if m.faults_injected > 0 {
        expo.counter(&name("faults_injected_total"), "Faults injected.", labels, m.faults_injected);
    }
    if m.tag_set_changes > 0 {
        expo.counter(
            &name("tag_set_changes_total"),
            "Tag-set changes at check sites.",
            labels,
            m.tag_set_changes,
        );
    }
    if let Some(ec) = &m.engine_cache {
        for (suffix, help, v) in [
            ("engine_cache_hits_total", "Block-cache step dispatches from cache.", ec.hits),
            ("engine_cache_misses_total", "Block-cache rebuilds or fallbacks.", ec.misses),
            (
                "engine_cache_invalidations_total",
                "Blocks killed by store ranges.",
                ec.invalidations,
            ),
            ("engine_cache_flushes_total", "Whole-cache flushes.", ec.flushes),
            ("engine_idle_steps_total", "Steps run with checks skipped.", ec.idle_steps),
            ("engine_checked_steps_total", "Steps run on the checked path.", ec.checked_steps),
        ] {
            expo.counter(&name(suffix), help, labels, v);
        }
    }
    for (atom, &c) in m.taint_high_water.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let atom_s = atom.to_string();
        let mut with_atom: Vec<(&str, &str)> = labels.to_vec();
        with_atom.push(("atom", &atom_s));
        expo.gauge(
            &name("taint_high_water_bytes"),
            "High-water classified RAM bytes per atom.",
            &with_atom,
            f64::from(c),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::HistSpec;

    #[test]
    fn counters_and_gauges_render_with_single_headers() {
        let mut e = Expo::new();
        e.counter("jobs_total", "Jobs.", &[("worker", "0")], 3);
        e.counter("jobs_total", "Jobs.", &[("worker", "1")], 4);
        e.gauge("depth", "Queue depth.", &[], 2.0);
        let text = e.finish();
        assert_eq!(text.matches("# HELP jobs_total").count(), 1, "{text}");
        assert_eq!(text.matches("# TYPE jobs_total counter").count(), 1);
        assert!(text.contains("jobs_total{worker=\"0\"} 3"));
        assert!(text.contains("jobs_total{worker=\"1\"} 4"));
        assert!(text.contains("# TYPE depth gauge"));
        assert!(text.contains("\ndepth 2\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let mut e = Expo::new();
        e.counter("x_total", "back\\slash help", &[("p", "a\"b\\c\nd")], 1);
        let text = e.finish();
        assert!(text.contains("# HELP x_total back\\\\slash help"), "{text}");
        assert!(text.contains("x_total{p=\"a\\\"b\\\\c\\nd\"} 1"), "{text}");
    }

    #[test]
    fn histogram_renders_cumulative_buckets() {
        let mut h = Hist::new(HistSpec::linear(10, 4));
        for v in [1u64, 5, 12, 35, 90] {
            h.record(v);
        }
        let mut e = Expo::new();
        e.histogram("lat", "Latency.", &[], &h, 1.0);
        let text = e.finish();
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_bucket{le=\"10\"} 2"), "{text}");
        assert!(text.contains("lat_bucket{le=\"20\"} 3"), "{text}");
        assert!(text.contains("lat_bucket{le=\"30\"} 3"), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 5"), "{text}");
        assert!(text.contains("lat_sum 143"), "{text}");
        assert!(text.contains("lat_count 5"), "{text}");
    }

    #[test]
    fn histogram_scale_converts_units() {
        let mut h = Hist::new(HistSpec::linear(500, 3));
        h.record(250);
        let mut e = Expo::new();
        e.histogram("wall_seconds", "Wall.", &[], &h, 1e-3);
        let text = e.finish();
        assert!(text.contains("wall_seconds_bucket{le=\"0.5\"} 1"), "{text}");
        assert!(text.contains("wall_seconds_sum 0.25"), "{text}");
    }

    #[test]
    fn metrics_registry_renders() {
        use crate::event::ObsEvent;
        use vpdift_core::Tag;
        let mut m = Metrics::default();
        m.update(&ObsEvent::InsnRetired {
            pc: 0,
            word: 0x13,
            compressed: false,
            fetch_tag: Tag::EMPTY,
            instret: 0,
        });
        m.update(&ObsEvent::Load { pc: 0, addr: 4, size: 4, tag: Tag::atom(1) });
        m.update(&ObsEvent::Tlm {
            bus: "sys-bus".into(),
            target: "uart".into(),
            addr: 0x1000_0000,
            len: 1,
            write: true,
            tag: Tag::EMPTY,
            ok: true,
            lat_ps: 0,
        });
        let mut e = Expo::new();
        render_metrics(&mut e, "vp", &[("session", "s1")], &m);
        let text = e.finish();
        assert!(text.contains("vp_instructions_total{session=\"s1\"} 1"), "{text}");
        assert!(text.contains("vp_loads_total{session=\"s1\",tagged=\"true\"} 1"), "{text}");
        assert!(
            text.contains("vp_tlm_transactions_total{session=\"s1\",target=\"uart\"} 1"),
            "{text}"
        );
        assert!(text.contains("vp_violations_total{session=\"s1\"} 0"), "{text}");
    }
}
