//! Aggregated DIFT run metrics and their text summary.

use core::fmt;
use std::collections::BTreeMap;

use crate::event::{CheckKind, ObsEvent};
use crate::sink::ATOM_SLOTS;

/// Per-check-kind counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckCounter {
    /// Checks evaluated.
    pub performed: u64,
    /// Checks that failed.
    pub failed: u64,
}

/// Block-cache engine counters as reported by the end-of-run
/// [`ObsEvent::EngineCache`] event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineCacheStats {
    /// Steps dispatched from a cached block.
    pub hits: u64,
    /// Cache lookups that had to (re)build or fall back.
    pub misses: u64,
    /// Blocks killed by store-range invalidation.
    pub invalidations: u64,
    /// Whole-cache flushes from external memory mutation.
    pub flushes: u64,
    /// Steps run with checks skipped (taint census clear).
    pub idle_steps: u64,
    /// Steps run on the slow checked path after the census armed.
    pub checked_steps: u64,
}

/// Counter registry fed from [`ObsEvent`]s; renders the `--metrics`
/// summary.
#[derive(Debug, Clone, Default)]
pub struct Metrics {
    /// Instructions retired.
    pub instructions: u64,
    /// Per-kind clearance check counts (indexed by [`CheckKind::index`]).
    pub checks: [CheckCounter; CheckKind::COUNT],
    /// Loads whose value carried a non-empty tag.
    pub tagged_loads: u64,
    /// Loads of untagged values.
    pub untagged_loads: u64,
    /// Stores of tagged values.
    pub tagged_stores: u64,
    /// Stores of untagged values.
    pub untagged_stores: u64,
    /// Register writes that changed the destination tag.
    pub tag_writes: u64,
    /// TLM transactions per target name.
    pub tlm_per_target: BTreeMap<String, u64>,
    /// Classification events (policy regions + peripheral ingress).
    pub classifications: u64,
    /// Declassification events.
    pub declassifications: u64,
    /// Violations recorded.
    pub violations: u64,
    /// Traps/interrupts taken.
    pub traps: u64,
    /// Faults injected by a fault-injection campaign.
    pub faults_injected: u64,
    /// Tag-set changes observed at named check sites.
    pub tag_set_changes: u64,
    /// Block-cache engine counters `(hits, misses, invalidations,
    /// flushes, idle_steps)`; `None` for interpreter runs.
    pub engine_cache: Option<EngineCacheStats>,
    /// Per-atom high-water mark of classified RAM bytes (from periodic
    /// spread samples; index = atom).
    pub taint_high_water: [u32; ATOM_SLOTS],
}

impl Metrics {
    /// Folds one event into the counters.
    pub fn update(&mut self, event: &ObsEvent) {
        match event {
            ObsEvent::InsnRetired { .. } => self.instructions += 1,
            ObsEvent::TagWrite { .. } => self.tag_writes += 1,
            ObsEvent::Load { tag, .. } => {
                if tag.is_empty() {
                    self.untagged_loads += 1;
                } else {
                    self.tagged_loads += 1;
                }
            }
            ObsEvent::Store { tag, .. } => {
                if tag.is_empty() {
                    self.untagged_stores += 1;
                } else {
                    self.tagged_stores += 1;
                }
            }
            ObsEvent::Check { kind, passed, .. } => {
                let c = &mut self.checks[kind.index()];
                c.performed += 1;
                if !passed {
                    c.failed += 1;
                }
            }
            ObsEvent::Violation(_) => self.violations += 1,
            ObsEvent::TagSetChange { .. } => self.tag_set_changes += 1,
            ObsEvent::Classify { .. } => self.classifications += 1,
            ObsEvent::Declassify { .. } => self.declassifications += 1,
            ObsEvent::Tlm { target, .. } => {
                *self.tlm_per_target.entry(target.clone()).or_insert(0) += 1;
            }
            ObsEvent::Trap { .. } => self.traps += 1,
            ObsEvent::FaultInjected { .. } => self.faults_injected += 1,
            ObsEvent::EngineCache {
                hits,
                misses,
                invalidations,
                flushes,
                idle_steps,
                checked_steps,
            } => {
                self.engine_cache = Some(EngineCacheStats {
                    hits: *hits,
                    misses: *misses,
                    invalidations: *invalidations,
                    flushes: *flushes,
                    idle_steps: *idle_steps,
                    checked_steps: *checked_steps,
                });
            }
        }
    }

    /// Folds a taint-spread sample into the per-atom high-water marks.
    pub fn update_spread(&mut self, counts: &[u32; ATOM_SLOTS]) {
        for (hw, &c) in self.taint_high_water.iter_mut().zip(counts) {
            *hw = (*hw).max(c);
        }
    }

    /// Total checks performed across kinds.
    pub fn total_checks(&self) -> u64 {
        self.checks.iter().map(|c| c.performed).sum()
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "== DIFT metrics ==")?;
        writeln!(f, "instructions retired:   {}", self.instructions)?;
        writeln!(
            f,
            "loads:                  {} tagged / {} untagged",
            self.tagged_loads, self.untagged_loads
        )?;
        writeln!(
            f,
            "stores:                 {} tagged / {} untagged",
            self.tagged_stores, self.untagged_stores
        )?;
        writeln!(f, "tag-changing reg writes: {}", self.tag_writes)?;
        writeln!(f, "clearance checks:       {} total", self.total_checks())?;
        for kind in CheckKind::ALL {
            let c = self.checks[kind.index()];
            if c.performed > 0 {
                writeln!(
                    f,
                    "  {:<12} {:>8} performed, {} failed",
                    kind.label(),
                    c.performed,
                    c.failed
                )?;
            }
        }
        writeln!(f, "classifications:        {}", self.classifications)?;
        writeln!(f, "declassifications:      {}", self.declassifications)?;
        writeln!(f, "traps taken:            {}", self.traps)?;
        writeln!(f, "violations:             {}", self.violations)?;
        if self.tag_set_changes > 0 {
            writeln!(f, "tag-set changes:        {}", self.tag_set_changes)?;
        }
        if self.faults_injected > 0 {
            writeln!(f, "faults injected:        {}", self.faults_injected)?;
        }
        if let Some(ec) = &self.engine_cache {
            writeln!(
                f,
                "block cache:            {} hits / {} misses, {} invalidations, {} flushes",
                ec.hits, ec.misses, ec.invalidations, ec.flushes
            )?;
            writeln!(
                f,
                "taint-idle steps:       {} ({} checked)",
                ec.idle_steps, ec.checked_steps
            )?;
        }
        if !self.tlm_per_target.is_empty() {
            writeln!(f, "TLM transactions per target:")?;
            for (target, n) in &self.tlm_per_target {
                writeln!(f, "  {target:<12} {n:>8}")?;
            }
        }
        let any_spread = self.taint_high_water.iter().any(|&c| c > 0);
        if any_spread {
            writeln!(f, "taint spread high-water (bytes of RAM per atom):")?;
            for (atom, &c) in self.taint_high_water.iter().enumerate() {
                if c > 0 {
                    writeln!(f, "  atom {atom:<2} {c:>10}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdift_core::Tag;

    #[test]
    fn counters_follow_events() {
        let mut m = Metrics::default();
        m.update(&ObsEvent::Load { pc: 0, addr: 4, size: 4, tag: Tag::atom(1) });
        m.update(&ObsEvent::Load { pc: 0, addr: 8, size: 4, tag: Tag::EMPTY });
        m.update(&ObsEvent::Check {
            kind: CheckKind::Output,
            tag: Tag::atom(1),
            required: Tag::EMPTY,
            pc: None,
            passed: false,
            site: Some("uart.tx".into()),
        });
        m.update(&ObsEvent::Tlm {
            bus: "sys-bus".into(),
            target: "uart".into(),
            addr: 0x1000_0000,
            len: 1,
            write: true,
            tag: Tag::atom(1),
            ok: false,
            lat_ps: 0,
        });
        assert_eq!(m.tagged_loads, 1);
        assert_eq!(m.untagged_loads, 1);
        assert_eq!(m.checks[CheckKind::Output.index()].performed, 1);
        assert_eq!(m.checks[CheckKind::Output.index()].failed, 1);
        assert_eq!(m.tlm_per_target["uart"], 1);
        let text = m.to_string();
        assert!(text.contains("output"));
        assert!(text.contains("1 tagged / 1 untagged"));
    }

    #[test]
    fn spread_keeps_high_water() {
        let mut m = Metrics::default();
        let mut s = [0u32; ATOM_SLOTS];
        s[0] = 16;
        m.update_spread(&s);
        s[0] = 4;
        s[2] = 9;
        m.update_spread(&s);
        assert_eq!(m.taint_high_water[0], 16, "high-water keeps the max");
        assert_eq!(m.taint_high_water[2], 9);
    }
}
