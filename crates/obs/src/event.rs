//! The cross-layer observability event vocabulary.

use core::fmt;

use vpdift_core::{Tag, Violation, ViolationKind};

/// Which clearance check an [`ObsEvent::Check`] refers to. A payload-free
/// mirror of [`ViolationKind`] so checks can be counted per kind without
/// allocating; the site name (sink, region, component) travels separately
/// in the event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckKind {
    /// Branch/jump/mret execution clearance (§V-B2a).
    Branch,
    /// Instruction-fetch clearance (§V-B2b).
    Fetch,
    /// Load/store address clearance (§V-B2c).
    MemAddr,
    /// Trap-vector clearance.
    TrapVector,
    /// Output-sink clearance (UART, CAN, …).
    Output,
    /// Protected-region store clearance.
    Store,
    /// Declassification authority.
    Declassify,
    /// A model-specific check.
    Custom,
}

impl CheckKind {
    /// Number of kinds (for fixed-size per-kind counters).
    pub const COUNT: usize = 8;

    /// Dense index for counter arrays.
    pub const fn index(self) -> usize {
        match self {
            CheckKind::Branch => 0,
            CheckKind::Fetch => 1,
            CheckKind::MemAddr => 2,
            CheckKind::TrapVector => 3,
            CheckKind::Output => 4,
            CheckKind::Store => 5,
            CheckKind::Declassify => 6,
            CheckKind::Custom => 7,
        }
    }

    /// All kinds, in [`CheckKind::index`] order.
    pub const ALL: [CheckKind; CheckKind::COUNT] = [
        CheckKind::Branch,
        CheckKind::Fetch,
        CheckKind::MemAddr,
        CheckKind::TrapVector,
        CheckKind::Output,
        CheckKind::Store,
        CheckKind::Declassify,
        CheckKind::Custom,
    ];

    /// Short label used in metric and export output.
    pub const fn label(self) -> &'static str {
        match self {
            CheckKind::Branch => "branch",
            CheckKind::Fetch => "fetch",
            CheckKind::MemAddr => "mem_addr",
            CheckKind::TrapVector => "trap_vector",
            CheckKind::Output => "output",
            CheckKind::Store => "store",
            CheckKind::Declassify => "declassify",
            CheckKind::Custom => "custom",
        }
    }

    /// The check kind a violation kind belongs to, plus its site name (the
    /// sink/region/component, when the kind carries one).
    pub fn of_violation(kind: &ViolationKind) -> (CheckKind, Option<&str>) {
        match kind {
            ViolationKind::Branch => (CheckKind::Branch, None),
            ViolationKind::Fetch => (CheckKind::Fetch, None),
            ViolationKind::MemAddr => (CheckKind::MemAddr, None),
            ViolationKind::TrapVector => (CheckKind::TrapVector, None),
            ViolationKind::Output { sink } => (CheckKind::Output, Some(sink)),
            ViolationKind::Store { region } => (CheckKind::Store, Some(region)),
            ViolationKind::Declassify { component } => (CheckKind::Declassify, Some(component)),
            ViolationKind::Custom { what } => (CheckKind::Custom, Some(what)),
        }
    }
}

impl fmt::Display for CheckKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One observability event, emitted by a VP layer into an
/// [`ObsSink`](crate::ObsSink).
///
/// Events are only produced when a sink with `ENABLED = true` is attached;
/// with the default [`NullSink`](crate::NullSink) every emission site is
/// compiled out.
#[derive(Debug, Clone, PartialEq)]
pub enum ObsEvent {
    /// One instruction retired. `word` holds the raw fetched bits (the
    /// 16-bit parcel for compressed instructions) so the flight recorder
    /// can disassemble lazily, long after the fact.
    InsnRetired {
        /// PC of the retired instruction.
        pc: u32,
        /// Raw instruction bits as fetched.
        word: u32,
        /// `true` when `word` is a 16-bit RV32C parcel.
        compressed: bool,
        /// LUB of the fetched bytes' tags (empty in plain mode).
        fetch_tag: Tag,
        /// Retired-instruction count *after* this instruction.
        instret: u64,
    },
    /// Tag propagation into an architectural register: the destination's
    /// tag before and after the write. Only emitted when the write changes
    /// the tag or the incoming tag is non-empty.
    TagWrite {
        /// PC of the writing instruction.
        pc: u32,
        /// Destination register number (1–31; x0 writes are dropped).
        reg: u8,
        /// Destination tag before the write.
        before: Tag,
        /// Destination tag after the write.
        after: Tag,
    },
    /// A data load observed at the CPU boundary.
    Load {
        /// PC of the load.
        pc: u32,
        /// Effective address.
        addr: u32,
        /// Access size in bytes.
        size: u32,
        /// Tag of the loaded value.
        tag: Tag,
    },
    /// A data store observed at the CPU boundary.
    Store {
        /// PC of the store.
        pc: u32,
        /// Effective address.
        addr: u32,
        /// Access size in bytes.
        size: u32,
        /// Tag of the stored value.
        tag: Tag,
    },
    /// A clearance check was evaluated (pass or fail).
    Check {
        /// What kind of check.
        kind: CheckKind,
        /// Tag of the checked data.
        tag: Tag,
        /// Clearance the site required.
        required: Tag,
        /// PC, when the check site knows it.
        pc: Option<u32>,
        /// `true` when `allowedFlow(tag, required)` held.
        passed: bool,
        /// Site name (sink/region/component) for named checks.
        site: Option<String>,
    },
    /// A violation was recorded by the DIFT engine.
    Violation(Violation),
    /// The tag set reaching a *named* check site (output sink, protected
    /// region, declassify component) changed: the engine saw a different
    /// tag at the site than on its previous check there. Much sparser than
    /// the per-check stream — live watchpoints key on it.
    TagSetChange {
        /// The named site (e.g. `"uart.tx"`).
        site: String,
        /// Tag last checked at the site (empty before the first check).
        before: Tag,
        /// Tag checked now.
        after: Tag,
    },
    /// Data entered the system already classified: a policy region applied
    /// at load time, or a peripheral ingress tagging incoming bytes.
    Classify {
        /// The classification site (region name or `"<periph>.rx"`-style
        /// source name).
        source: String,
        /// The applied tag.
        tag: Tag,
        /// Address for memory-region classification, `None` for
        /// peripheral ingress.
        addr: Option<u32>,
    },
    /// A trusted component removed atoms from data (e.g. the AES engine
    /// re-tagging ciphertext).
    Declassify {
        /// The declassifying component.
        component: String,
        /// Tag before declassification.
        before: Tag,
        /// Tag after declassification.
        after: Tag,
    },
    /// A TLM transaction was routed to a target.
    Tlm {
        /// Name of the routing interconnect (e.g. `"sys-bus"`).
        bus: String,
        /// Name of the addressed target, or `"<unmapped>"`.
        target: String,
        /// Global (pre-rewrite) address.
        addr: u32,
        /// Payload length in bytes.
        len: u32,
        /// `true` for writes.
        write: bool,
        /// LUB of the payload byte tags after the transaction.
        tag: Tag,
        /// `true` when the target responded OK.
        ok: bool,
        /// Latency the target added to the transaction, in picoseconds
        /// (0 for unrouted or error-terminated transactions).
        lat_ps: u64,
    },
    /// A trap or interrupt was taken.
    Trap {
        /// PC at which the trap was taken.
        pc: u32,
        /// `mcause` value (without the interrupt bit).
        cause: u32,
        /// `true` for asynchronous interrupts.
        irq: bool,
    },
    /// A fault was injected into the platform by a fault-injection
    /// campaign (`vpdift-faults`).
    FaultInjected {
        /// Where the fault was injected (e.g. `"ram"`, `"sys-bus"`,
        /// `"can"`, `"plic"`).
        site: String,
        /// Fault kind label (e.g. `"ram_data_flip"`, `"tlm_drop"`).
        kind: String,
        /// Faulted address, when the fault targets one.
        addr: Option<u32>,
        /// Kind-specific detail (bit index, IRQ line, burst count, …).
        detail: u32,
    },
    /// End-of-run counters from a block-caching execution engine
    /// (`vpdift-rv32`'s `BlockCache`); absent for interpreter runs.
    EngineCache {
        /// Steps dispatched from a cached block.
        hits: u64,
        /// Cache lookups that had to (re)build or fall back.
        misses: u64,
        /// Blocks killed by store-range invalidation (self-modifying code).
        invalidations: u64,
        /// Whole-cache flushes from external memory mutation.
        flushes: u64,
        /// Steps run with checks skipped because the taint census was
        /// still clear.
        idle_steps: u64,
        /// Steps run on the slow checked path after the census armed.
        checked_steps: u64,
    },
}

impl ObsEvent {
    /// Short kind label (export key, progress displays).
    pub const fn label(&self) -> &'static str {
        match self {
            ObsEvent::InsnRetired { .. } => "insn",
            ObsEvent::TagWrite { .. } => "tag_write",
            ObsEvent::Load { .. } => "load",
            ObsEvent::Store { .. } => "store",
            ObsEvent::Check { .. } => "check",
            ObsEvent::Violation(_) => "violation",
            ObsEvent::TagSetChange { .. } => "tag_set_change",
            ObsEvent::Classify { .. } => "classify",
            ObsEvent::Declassify { .. } => "declassify",
            ObsEvent::Tlm { .. } => "tlm",
            ObsEvent::Trap { .. } => "trap",
            ObsEvent::FaultInjected { .. } => "fault",
            ObsEvent::EngineCache { .. } => "engine_cache",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_kind_indices_are_dense_and_unique() {
        let mut seen = [false; CheckKind::COUNT];
        for k in CheckKind::ALL {
            assert!(!seen[k.index()], "duplicate index");
            seen[k.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn violation_kinds_map_to_checks_with_sites() {
        let output = ViolationKind::Output { sink: "uart.tx".into() };
        let (k, site) = CheckKind::of_violation(&output);
        assert_eq!(k, CheckKind::Output);
        assert_eq!(site, Some("uart.tx"));
        let (k, site) = CheckKind::of_violation(&ViolationKind::Branch);
        assert_eq!(k, CheckKind::Branch);
        assert_eq!(site, None);
    }
}
