//! Guest-level profiler: symbol-attributed instruction histograms, a
//! call/return-tracked shadow stack with folded-stack (flamegraph)
//! output, and log2-bucketed TLM latency/access histograms.
//!
//! The profiler is fed from the same [`ObsEvent`] stream every other sink
//! consumes — it decodes call/return shape from the retired instruction
//! bits itself, so the CPU hot path gains no new hook. It is opt-in on
//! the [`Recorder`](crate::Recorder) and, like everything else in this
//! crate, nonexistent in `NullSink` builds.
//!
//! Attribution model: every PC is attributed to the nearest *preceding*
//! label of the guest program's symbol table (`vpdift_asm::Program`
//! exports its label map). The shadow stack keeps one frame per pending
//! call, named after the *call site's* symbol, so a folded stack reads
//! like a sampled flamegraph: `dhry_loop;rt_strcmp 12043` means 12043
//! instructions retired inside `rt_strcmp` called from `dhry_loop`.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

use vpdift_asm::{decompress, is_compressed, Insn, Program, Reg};

use crate::event::ObsEvent;
use crate::hist::{Hist, HistSpec};

/// Sorted address→name map built from a program's label table.
#[derive(Debug, Clone, Default)]
pub struct SymbolMap {
    /// `(address, name)`, sorted by address then name.
    syms: Vec<(u32, String)>,
}

/// Index sentinel for PCs before the first label.
const NO_SYM: usize = usize::MAX;

/// Display name used for unattributable PCs.
pub const UNKNOWN_SYMBOL: &str = "[unknown]";

impl SymbolMap {
    /// Builds the map from an assembled program's exported label table.
    pub fn from_program(program: &Program) -> Self {
        Self::from_symbols(program.symbols().map(|(n, a)| (a, n.to_owned())))
    }

    /// Builds the map from raw `(address, name)` pairs.
    pub fn from_symbols<I: IntoIterator<Item = (u32, String)>>(iter: I) -> Self {
        let mut syms: Vec<(u32, String)> = iter.into_iter().collect();
        syms.sort();
        syms.dedup();
        SymbolMap { syms }
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.syms.len()
    }

    /// `true` when the map has no symbols.
    pub fn is_empty(&self) -> bool {
        self.syms.is_empty()
    }

    /// Index of the nearest symbol at or before `pc`, or [`NO_SYM`].
    fn index_of(&self, pc: u32) -> usize {
        match self.syms.partition_point(|&(a, _)| a <= pc) {
            0 => NO_SYM,
            n => n - 1,
        }
    }

    fn name_at(&self, index: usize) -> &str {
        self.syms.get(index).map(|(_, n)| n.as_str()).unwrap_or(UNKNOWN_SYMBOL)
    }

    /// Resolves `pc` to `(symbol, offset)` against the nearest preceding
    /// label, or `None` before the first label.
    pub fn resolve(&self, pc: u32) -> Option<(&str, u32)> {
        match self.index_of(pc) {
            NO_SYM => None,
            i => Some((self.syms[i].1.as_str(), pc - self.syms[i].0)),
        }
    }

    /// Renders `pc` as `0xXXXXXXXX <symbol+0xoff>` (or bare hex when no
    /// symbol precedes it).
    pub fn format_pc(&self, pc: u32) -> String {
        match self.resolve(pc) {
            Some((name, 0)) => format!("{pc:#010x} <{name}>"),
            Some((name, off)) => format!("{pc:#010x} <{name}+{off:#x}>"),
            None => format!("{pc:#010x}"),
        }
    }
}

/// Number of log2 latency buckets (bucket `i` covers `[2^(i-1), 2^i)`
/// nanoseconds; bucket 0 is `< 1 ns`).
pub const LAT_BUCKETS: usize = 32;

/// The latency bucket layout: [`LAT_BUCKETS`] log2 buckets over
/// nanoseconds.
pub fn lat_spec() -> HistSpec {
    HistSpec::log2(LAT_BUCKETS)
}

/// Per-TLM-target access statistics.
#[derive(Debug, Clone)]
pub struct TlmStat {
    /// Read transactions.
    pub reads: u64,
    /// Write transactions.
    pub writes: u64,
    /// Transactions that did not complete OK.
    pub errors: u64,
    /// Payload bytes moved.
    pub bytes: u64,
    /// Accumulated target latency in picoseconds.
    pub lat_total_ps: u64,
    /// Log2-bucketed latency histogram (nanoseconds; see
    /// [`lat_spec`]).
    pub lat_hist: Hist,
}

impl Default for TlmStat {
    fn default() -> Self {
        TlmStat {
            reads: 0,
            writes: 0,
            errors: 0,
            bytes: 0,
            lat_total_ps: 0,
            lat_hist: Hist::new(lat_spec()),
        }
    }
}

impl TlmStat {
    /// Total transactions.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

/// Shadow-stack depth cap; calls beyond it are counted, not pushed, and
/// matching returns unwind the overflow counter first so the stack stays
/// balanced.
const MAX_DEPTH: usize = 64;

/// The guest profiler. Feed it events with [`Profiler::on_event`]; read
/// results with the `flat`/`inclusive`/`folded_output`/`render_*`
/// accessors.
#[derive(Debug, Clone)]
pub struct Profiler {
    symbols: SymbolMap,
    pc_hist: HashMap<u32, u64>,
    folded: HashMap<Vec<usize>, u64>,
    /// Call-site symbol index per open frame.
    stack: Vec<usize>,
    /// Calls not pushed because the stack hit [`MAX_DEPTH`].
    overflow: u64,
    tlm: BTreeMap<String, TlmStat>,
    insns: u64,
}

impl Profiler {
    /// A profiler attributing against `symbols`.
    pub fn new(symbols: SymbolMap) -> Self {
        Profiler {
            symbols,
            pc_hist: HashMap::new(),
            folded: HashMap::new(),
            stack: Vec::new(),
            overflow: 0,
            tlm: BTreeMap::new(),
            insns: 0,
        }
    }

    /// The symbol map the profiler attributes against.
    pub fn symbols(&self) -> &SymbolMap {
        &self.symbols
    }

    /// Instructions profiled.
    pub fn insns(&self) -> u64 {
        self.insns
    }

    /// The exact per-PC instruction histogram.
    pub fn pc_histogram(&self) -> &HashMap<u32, u64> {
        &self.pc_hist
    }

    /// Per-target TLM statistics.
    pub fn tlm_stats(&self) -> &BTreeMap<String, TlmStat> {
        &self.tlm
    }

    /// Folds one event into the profile.
    pub fn on_event(&mut self, event: &ObsEvent) {
        match event {
            ObsEvent::InsnRetired { pc, word, compressed, .. } => {
                self.on_insn(*pc, *word, *compressed);
            }
            ObsEvent::Trap { pc, .. } => {
                // Trap entry behaves like a call from the trapping
                // context; `mret` pops it again.
                self.push_frame(self.symbols.index_of(*pc));
            }
            ObsEvent::Tlm { target, len, write, ok, lat_ps, .. } => {
                let stat = self.tlm.entry(target.clone()).or_default();
                if *write {
                    stat.writes += 1;
                } else {
                    stat.reads += 1;
                }
                if !*ok {
                    stat.errors += 1;
                }
                stat.bytes += u64::from(*len);
                stat.lat_total_ps += *lat_ps;
                stat.lat_hist.record(*lat_ps / 1000);
            }
            _ => {}
        }
    }

    fn on_insn(&mut self, pc: u32, word: u32, compressed: bool) {
        self.insns += 1;
        *self.pc_hist.entry(pc).or_insert(0) += 1;

        // Attribute to the current stack plus the leaf symbol.
        let leaf = self.symbols.index_of(pc);
        let mut key = Vec::with_capacity(self.stack.len() + 1);
        key.extend_from_slice(&self.stack);
        key.push(leaf);
        *self.folded.entry(key).or_insert(0) += 1;

        // Track calls and returns from the instruction shape.
        let insn = if compressed {
            let half = word as u16;
            if !is_compressed(half) {
                return;
            }
            match decompress(half) {
                Ok(i) => i,
                Err(_) => return,
            }
        } else {
            match Insn::decode(word) {
                Ok(i) => i,
                Err(_) => return,
            }
        };
        match insn {
            Insn::Jal { rd: Reg::Ra, .. } | Insn::Jalr { rd: Reg::Ra, .. } => {
                self.push_frame(leaf);
            }
            Insn::Jalr { rd: Reg::Zero, rs1: Reg::Ra, .. } | Insn::Mret => self.pop_frame(),
            _ => {}
        }
    }

    fn push_frame(&mut self, site: usize) {
        if self.stack.len() < MAX_DEPTH {
            self.stack.push(site);
        } else {
            self.overflow += 1;
        }
    }

    fn pop_frame(&mut self) {
        if self.overflow > 0 {
            self.overflow -= 1;
        } else {
            self.stack.pop();
        }
    }

    /// Flat (exclusive) profile: instructions attributed per symbol,
    /// sorted by count descending, ties by name.
    pub fn flat(&self) -> Vec<(String, u64)> {
        let mut per_sym: HashMap<usize, u64> = HashMap::new();
        for (&pc, &n) in &self.pc_hist {
            *per_sym.entry(self.symbols.index_of(pc)).or_insert(0) += n;
        }
        let mut out: Vec<(String, u64)> =
            per_sym.into_iter().map(|(i, n)| (self.sym_name(i).to_owned(), n)).collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Inclusive profile: instructions retired while the symbol was the
    /// leaf *or anywhere on the shadow stack* — the flamegraph view. A
    /// loop that calls helpers owns its callees' time here.
    pub fn inclusive(&self) -> Vec<(String, u64)> {
        let mut per_sym: HashMap<usize, u64> = HashMap::new();
        for (key, &n) in &self.folded {
            let mut seen: Vec<usize> = Vec::with_capacity(key.len());
            for &sym in key {
                if !seen.contains(&sym) {
                    seen.push(sym);
                    *per_sym.entry(sym).or_insert(0) += n;
                }
            }
        }
        let mut out: Vec<(String, u64)> =
            per_sym.into_iter().map(|(i, n)| (self.sym_name(i).to_owned(), n)).collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    fn sym_name(&self, index: usize) -> &str {
        if index == NO_SYM {
            UNKNOWN_SYMBOL
        } else {
            self.symbols.name_at(index)
        }
    }

    /// Folded-stack output, one `frame;frame;leaf count` line per unique
    /// stack, sorted lexicographically — feed straight into
    /// `flamegraph.pl` or speedscope.
    pub fn folded_output(&self) -> String {
        let mut lines: Vec<String> = self
            .folded
            .iter()
            .map(|(key, n)| {
                let frames: Vec<&str> = key.iter().map(|&i| self.sym_name(i)).collect();
                format!("{} {n}", frames.join(";"))
            })
            .collect();
        lines.sort();
        let mut out = lines.join("\n");
        if !out.is_empty() {
            out.push('\n');
        }
        out
    }

    /// Renders the flat profile's top `n` symbols with percentages.
    pub fn render_flat(&self, n: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== guest profile: top {n} symbols (exclusive) ==");
        let total = self.insns.max(1);
        for (name, count) in self.flat().into_iter().take(n) {
            let pct = count as f64 * 100.0 / total as f64;
            let _ = writeln!(out, "  {name:<24} {count:>12}  {pct:>5.1}%");
        }
        let _ = writeln!(out, "  {:<24} {:>12}  100.0%", "total", self.insns);
        out
    }

    /// Renders the per-target TLM access and latency histograms.
    pub fn render_tlm(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== TLM access/latency histograms ==");
        if self.tlm.is_empty() {
            let _ = writeln!(out, "  (no TLM transactions observed)");
            return out;
        }
        for (target, s) in &self.tlm {
            let _ = writeln!(
                out,
                "  {target:<12} {:>8} accesses ({} R / {} W, {} err), {} bytes, avg latency {} ns",
                s.accesses(),
                s.reads,
                s.writes,
                s.errors,
                s.bytes,
                s.lat_total_ps / 1000 / s.accesses().max(1),
            );
            for (i, &n) in s.lat_hist.buckets().iter().enumerate() {
                if n == 0 {
                    continue;
                }
                let label = if i == 0 {
                    "      <1 ns".to_owned()
                } else {
                    format!("{:>7} ns", s.lat_hist.spec().lower_bound(i))
                };
                let _ = writeln!(out, "    {label} .. : {n:>8}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdift_asm::Asm;
    use vpdift_core::Tag;

    fn insn(pc: u32, word: u32) -> ObsEvent {
        ObsEvent::InsnRetired { pc, word, compressed: false, fetch_tag: Tag::EMPTY, instret: 0 }
    }

    /// `jal ra, +8` — a call.
    const CALL: u32 = 0x008000EF;
    /// `jalr x0, 0(ra)` — the canonical `ret`.
    const RET: u32 = 0x00008067;
    /// `addi x0, x0, 0` — nop.
    const NOP: u32 = 0x00000013;

    fn symmap(pairs: &[(u32, &str)]) -> SymbolMap {
        SymbolMap::from_symbols(pairs.iter().map(|&(a, n)| (a, n.to_owned())))
    }

    #[test]
    fn symbol_map_resolves_nearest_preceding_label() {
        let m = symmap(&[(0x10, "main"), (0x40, "helper")]);
        assert_eq!(m.resolve(0x8), None, "before the first label");
        assert_eq!(m.resolve(0x10), Some(("main", 0)));
        assert_eq!(m.resolve(0x3C), Some(("main", 0x2C)));
        assert_eq!(m.resolve(0x44), Some(("helper", 4)));
        assert_eq!(m.format_pc(0x44), "0x00000044 <helper+0x4>");
        assert_eq!(m.format_pc(0x40), "0x00000040 <helper>");
        assert_eq!(m.format_pc(0x4), "0x00000004");
    }

    #[test]
    fn symbol_map_from_program_sees_labels() {
        let mut a = Asm::new(0);
        a.label("start");
        a.nop();
        a.label("tail");
        a.nop();
        let p = a.assemble().unwrap();
        let m = SymbolMap::from_program(&p);
        assert_eq!(m.len(), 2);
        assert_eq!(m.resolve(4), Some(("tail", 0)));
    }

    #[test]
    fn shadow_stack_folds_calls() {
        let m = symmap(&[(0x0, "main"), (0x100, "helper")]);
        let mut p = Profiler::new(m);
        p.on_event(&insn(0x0, NOP));
        p.on_event(&insn(0x4, CALL)); // call from main
        p.on_event(&insn(0x100, NOP)); // inside helper
        p.on_event(&insn(0x104, RET));
        p.on_event(&insn(0x8, NOP)); // back in main
        let folded = p.folded_output();
        assert!(folded.contains("main 3"), "main-leaf insns: {folded}");
        assert!(folded.contains("main;helper 2"), "callee attributed under call site: {folded}");
        let inclusive = p.inclusive();
        assert_eq!(inclusive[0], ("main".to_owned(), 5), "main owns everything inclusively");
        assert_eq!(p.insns(), 5);
        assert_eq!(p.pc_histogram()[&0x0], 1);
    }

    #[test]
    fn flat_profile_attributes_by_symbol() {
        let m = symmap(&[(0x0, "a"), (0x100, "b")]);
        let mut p = Profiler::new(m);
        for _ in 0..3 {
            p.on_event(&insn(0x100, NOP));
        }
        p.on_event(&insn(0x0, NOP));
        let flat = p.flat();
        assert_eq!(flat[0], ("b".to_owned(), 3));
        assert_eq!(flat[1], ("a".to_owned(), 1));
        let text = p.render_flat(10);
        assert!(text.contains('b') && text.contains("75.0%"), "{text}");
    }

    #[test]
    fn trap_and_mret_balance_the_stack() {
        let m = symmap(&[(0x0, "main"), (0x200, "trap_vec")]);
        let mut p = Profiler::new(m);
        p.on_event(&insn(0x4, NOP));
        p.on_event(&ObsEvent::Trap { pc: 0x8, cause: 3, irq: false });
        p.on_event(&insn(0x200, NOP));
        // mret: 0x30200073
        p.on_event(&insn(0x204, 0x30200073));
        p.on_event(&insn(0x8, NOP));
        let folded = p.folded_output();
        assert!(folded.contains("main;trap_vec 2"), "handler under trapping context: {folded}");
        assert!(folded.contains("main 2"), "{folded}");
    }

    #[test]
    fn deep_recursion_is_depth_capped() {
        let m = symmap(&[(0x0, "rec")]);
        let mut p = Profiler::new(m);
        for _ in 0..(MAX_DEPTH + 20) {
            p.on_event(&insn(0x0, CALL));
        }
        for _ in 0..(MAX_DEPTH + 20) {
            p.on_event(&insn(0x4, RET));
        }
        p.on_event(&insn(0x8, NOP));
        assert!(p.stack.is_empty(), "overflowed calls unwind cleanly");
        // First call and final nop both fold to a bare depth-1 "rec" key.
        let folded = p.folded_output();
        assert!(folded.lines().any(|l| l == "rec 2"), "{folded}");
    }

    #[test]
    fn tlm_histograms_bucket_by_log2_latency() {
        let mut p = Profiler::new(SymbolMap::default());
        let tlm = |lat_ps: u64, write: bool, ok: bool| ObsEvent::Tlm {
            bus: "sys-bus".into(),
            target: "uart".into(),
            addr: 0x1000_0000,
            len: 4,
            write,
            tag: Tag::EMPTY,
            ok,
            lat_ps,
        };
        p.on_event(&tlm(0, false, true)); // <1ns
        p.on_event(&tlm(1_000, true, true)); // 1ns -> bucket 1
        p.on_event(&tlm(100_000, true, false)); // 100ns -> bucket 7
        let s = &p.tlm_stats()["uart"];
        assert_eq!(s.accesses(), 3);
        assert_eq!((s.reads, s.writes, s.errors, s.bytes), (1, 2, 1, 12));
        assert_eq!(s.lat_hist[0], 1);
        assert_eq!(s.lat_hist[1], 1);
        assert_eq!(s.lat_hist[7], 1);
        let text = p.render_tlm();
        assert!(text.contains("uart") && text.contains("3 accesses"), "{text}");
    }

    #[test]
    fn unknown_pcs_render_as_unknown() {
        let mut p = Profiler::new(symmap(&[(0x100, "late")]));
        p.on_event(&insn(0x4, NOP));
        assert_eq!(p.flat()[0].0, UNKNOWN_SYMBOL);
        assert!(p.folded_output().starts_with(UNKNOWN_SYMBOL));
    }

    #[test]
    fn lat_bucket_boundaries() {
        // The latency layout buckets by log2 of *nanoseconds* (events
        // carry picoseconds; `on_event` divides).
        let bucket = |lat_ps: u64| lat_spec().bucket_of(lat_ps / 1000);
        assert_eq!(bucket(0), 0);
        assert_eq!(bucket(999), 0);
        assert_eq!(bucket(1_000), 1);
        assert_eq!(bucket(2_000), 2);
        assert_eq!(bucket(3_000), 2);
        assert_eq!(bucket(4_000), 3);
        assert_eq!(bucket(u64::MAX), LAT_BUCKETS - 1);
    }
}
