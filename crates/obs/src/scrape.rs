//! A minimal, dependency-free `GET /metrics` endpoint.
//!
//! [`MetricsServer::bind`] spawns one background thread that accepts
//! plain-HTTP/1.1 connections and answers `GET /metrics` with whatever
//! the supplied render closure returns (Prometheus text exposition,
//! `text/plain; version=0.0.4`). It is deliberately tiny: one request
//! per connection, bounded request head, typed errors, and *no panics on
//! malformed input* — a garbage request earns a `400` and the server
//! keeps serving. Shutdown is explicit ([`MetricsServer::shutdown`]) or
//! on drop.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Renders the current exposition document for one scrape.
pub type RenderFn = Arc<dyn Fn() -> String + Send + Sync>;

/// Why the endpoint could not start.
#[derive(Debug)]
pub enum ScrapeError {
    /// The listen socket could not be bound or configured.
    Bind {
        /// The requested address.
        addr: String,
        /// The underlying socket error.
        source: std::io::Error,
    },
}

impl core::fmt::Display for ScrapeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ScrapeError::Bind { addr, source } => {
                write!(f, "cannot bind metrics endpoint on {addr}: {source}")
            }
        }
    }
}

impl std::error::Error for ScrapeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ScrapeError::Bind { source, .. } => Some(source),
        }
    }
}

/// Largest request head accepted; anything longer is a `400`.
const MAX_HEAD: usize = 8 * 1024;
/// Per-connection read/write timeout.
const IO_TIMEOUT: Duration = Duration::from_secs(2);

/// A running scrape endpoint. Dropping it stops the accept thread.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl core::fmt::Debug for MetricsServer {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("MetricsServer").field("addr", &self.addr).finish_non_exhaustive()
    }
}

impl MetricsServer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`, port 0 for ephemeral) and
    /// serves `GET /metrics` from `render` until shutdown.
    pub fn bind(addr: &str, render: RenderFn) -> Result<MetricsServer, ScrapeError> {
        let bind_err = |source| ScrapeError::Bind { addr: addr.to_owned(), source };
        let listener = TcpListener::bind(addr).map_err(bind_err)?;
        listener.set_nonblocking(true).map_err(bind_err)?;
        let local = listener.local_addr().map_err(bind_err)?;

        let stop = Arc::new(AtomicBool::new(false));
        let stop_thread = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("metrics-scrape".into())
            .spawn(move || accept_loop(&listener, &stop_thread, &render))
            .map_err(|source| ScrapeError::Bind { addr: addr.to_owned(), source })?;

        Ok(MetricsServer { addr: local, stop, handle: Some(handle) })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept thread and waits for it to exit.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool, render: &RenderFn) {
    while !stop.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => handle_conn(stream, render),
            // WouldBlock is the idle case; any other accept error is
            // transient from our point of view — keep serving.
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

/// Serves exactly one request on `stream`, best-effort: peers that hang
/// up or dawdle past the timeout are simply dropped.
fn handle_conn(stream: TcpStream, render: &RenderFn) {
    let mut stream = stream;
    if stream.set_nonblocking(false).is_err()
        || stream.set_read_timeout(Some(IO_TIMEOUT)).is_err()
        || stream.set_write_timeout(Some(IO_TIMEOUT)).is_err()
    {
        return;
    }
    let (status, content_type, body) = match read_request(&mut stream) {
        Some(head) => route(&head, render),
        None => ("400 Bad Request", "text/plain; charset=utf-8", "bad request\n".to_owned()),
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// Reads the request head (through the blank line), bounded by
/// [`MAX_HEAD`]. `None` on oversize, timeout, or disconnect.
fn read_request(stream: &mut TcpStream) -> Option<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        // Oversize verdicts must precede the terminator check: a
        // complete-but-huge head is still a bad request.
        if buf.len() > MAX_HEAD {
            return None;
        }
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(_) => return None,
        }
    }
    Some(String::from_utf8_lossy(&buf).into_owned())
}

/// Routes one request head to `(status, content type, body)`.
fn route(head: &str, render: &RenderFn) -> (&'static str, &'static str, String) {
    let plain = "text/plain; charset=utf-8";
    let Some(request_line) = head.lines().next() else {
        return ("400 Bad Request", plain, "bad request\n".to_owned());
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return ("400 Bad Request", plain, "bad request\n".to_owned());
    };
    if !version.starts_with("HTTP/") || !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return ("400 Bad Request", plain, "bad request\n".to_owned());
    }
    if method != "GET" {
        return ("405 Method Not Allowed", plain, "only GET is supported\n".to_owned());
    }
    let bare = path.split('?').next().unwrap_or(path);
    match bare {
        "/metrics" => ("200 OK", "text/plain; version=0.0.4; charset=utf-8", render()),
        "/" => ("200 OK", plain, "taintvp metrics endpoint; scrape /metrics\n".to_owned()),
        _ => ("404 Not Found", plain, "not found; scrape /metrics\n".to_owned()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn server() -> MetricsServer {
        let render: RenderFn = Arc::new(|| "# TYPE up gauge\nup 1\n".to_owned());
        MetricsServer::bind("127.0.0.1:0", render).expect("ephemeral bind")
    }

    fn request(addr: SocketAddr, raw: &[u8]) -> String {
        let mut s = TcpStream::connect(addr).expect("connect");
        s.write_all(raw).unwrap();
        let mut out = String::new();
        BufReader::new(s).read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn scrape_returns_exposition_text() {
        let srv = server();
        let resp = request(srv.local_addr(), b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200 OK\r\n"), "{resp}");
        assert!(resp.contains("text/plain; version=0.0.4"), "{resp}");
        assert!(resp.ends_with("up 1\n"), "{resp}");
        srv.shutdown();
    }

    #[test]
    fn malformed_requests_get_400_and_server_survives() {
        let srv = server();
        let resp = request(srv.local_addr(), b"\xff\xfe garbage\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        // An empty-line-only request parses to no tokens: also 400.
        let resp = request(srv.local_addr(), b"\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        // The endpoint still serves after the garbage.
        let resp = request(srv.local_addr(), b"GET /metrics HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        srv.shutdown();
    }

    #[test]
    fn wrong_method_and_path_are_rejected() {
        let srv = server();
        let resp = request(srv.local_addr(), b"POST /metrics HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");
        let resp = request(srv.local_addr(), b"GET /nope HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 404"), "{resp}");
        let resp = request(srv.local_addr(), b"GET /metrics?x=1 HTTP/1.1\r\n\r\n");
        assert!(resp.starts_with("HTTP/1.1 200"), "query strings are tolerated: {resp}");
        srv.shutdown();
    }

    #[test]
    fn read_line_folding_via_bufreader_is_not_required() {
        // Guard against over-long heads: > MAX_HEAD earns a 400.
        let srv = server();
        let mut raw = Vec::from(&b"GET /metrics HTTP/1.1\r\nX-Pad: "[..]);
        raw.extend(vec![b'a'; MAX_HEAD + 100]);
        raw.extend_from_slice(b"\r\n\r\n");
        let resp = request(srv.local_addr(), &raw);
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
        srv.shutdown();
    }
}
