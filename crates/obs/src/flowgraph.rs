//! Taint flow-graph exporters: DOT and JSON views of the per-atom
//! propagation DAG recorded in [`ProvenanceMap`], plus the textual
//! source→sink path renderer behind `taintvp-run --explain`.
//!
//! The graph has one cluster per atom with recorded state: the
//! classification site (source node), the bounded chain of hops, and the
//! rejecting sink, in recorded order. Nodes carry symbol-resolved PCs
//! when a [`SymbolMap`] is supplied.

use std::io::{self, Write};

use vpdift_core::AtomTable;

use crate::disasm::RawInsn;
use crate::prof::SymbolMap;
use crate::provenance::{FlowPath, Hop, HopKind, ProvenanceMap};

fn atom_label(atoms: &AtomTable, atom: u32) -> String {
    match atoms.name(atom) {
        Some(name) => format!("atom {atom} ({name})"),
        None => format!("atom {atom}"),
    }
}

fn fmt_pc(pc: Option<u32>, symbols: Option<&SymbolMap>) -> Option<String> {
    let pc = pc?;
    Some(match symbols {
        Some(m) => m.format_pc(pc),
        None => format!("{pc:#010x}"),
    })
}

/// One-line description of a hop, used by DOT labels and `--explain`.
fn hop_text(hop: &Hop, symbols: Option<&SymbolMap>) -> String {
    let mut text = match &hop.kind {
        HopKind::Reg(r) => format!("reg x{r}"),
        HopKind::Load => "load".to_owned(),
        HopKind::Store => "store".to_owned(),
        HopKind::Tlm { bus, target } => format!("tlm {bus}->{target}"),
    };
    if let Some(addr) = hop.addr {
        text.push_str(&format!(" @{addr:#x}"));
    }
    if let Some(pc) = fmt_pc(hop.pc, symbols) {
        text.push_str(&format!(" at {pc}"));
    }
    if hop.repeats > 1 {
        text.push_str(&format!(" x{}", hop.repeats));
    }
    text
}

fn dot_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Writes the recorded flow graph as Graphviz DOT. One subgraph cluster
/// per atom; edges follow recorded order source → hop₁ → … → sink.
pub fn write_dot<W: Write>(
    w: &mut W,
    map: &ProvenanceMap,
    atoms: &AtomTable,
    symbols: Option<&SymbolMap>,
) -> io::Result<()> {
    writeln!(w, "digraph taint_flow {{")?;
    writeln!(w, "  rankdir=LR;")?;
    writeln!(w, "  node [shape=box, fontsize=10];")?;
    for path in map.paths() {
        let a = path.atom;
        writeln!(w, "  subgraph cluster_atom{a} {{")?;
        writeln!(w, "    label=\"{}\";", dot_escape(&atom_label(atoms, a)))?;
        let mut prev: Option<String> = None;
        if let Some(origin) = path.origin {
            let id = format!("a{a}_src");
            let mut label = format!("source: {}", dot_escape(&origin.source));
            if let Some(addr) = origin.addr {
                label.push_str(&format!("\\n@{addr:#x}"));
            }
            label.push_str(&format!("\\nt={}", origin.time));
            writeln!(
                w,
                "    {id} [label=\"{label}\", shape=ellipse, style=filled, fillcolor=lightblue];"
            )?;
            prev = Some(id);
        }
        if path.evicted > 0 {
            let id = format!("a{a}_evicted");
            writeln!(
                w,
                "    {id} [label=\"({} older hops evicted)\", shape=plaintext];",
                path.evicted
            )?;
            if let Some(p) = &prev {
                writeln!(w, "    {p} -> {id} [style=dashed];")?;
            }
            prev = Some(id);
        }
        for (i, hop) in path.hops.iter().enumerate() {
            let id = format!("a{a}_h{i}");
            writeln!(w, "    {id} [label=\"{}\"];", dot_escape(&hop_text(hop, symbols)))?;
            if let Some(p) = &prev {
                writeln!(w, "    {p} -> {id};")?;
            }
            prev = Some(id);
        }
        if let Some(sink) = path.sink {
            let id = format!("a{a}_sink");
            let mut label = format!("sink: {}", dot_escape(&sink.site));
            if let Some(pc) = fmt_pc(sink.pc, symbols) {
                label.push_str(&format!("\\nat {}", dot_escape(&pc)));
            }
            writeln!(
                w,
                "    {id} [label=\"{label}\", shape=ellipse, style=filled, fillcolor=lightcoral];"
            )?;
            if let Some(p) = &prev {
                writeln!(w, "    {p} -> {id} [color=red];")?;
            }
        }
        writeln!(w, "  }}")?;
    }
    writeln!(w, "}}")
}

fn json_str(s: &str) -> String {
    format!("\"{}\"", crate::export::escape(s))
}

fn opt_u32_json(v: Option<u32>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_owned(),
    }
}

/// Writes the recorded flow graph as JSON (`taintvp-flow/v1` schema):
/// one entry per atom with `origin`, `hops[]`, `evicted`, and `sink`.
pub fn write_json<W: Write>(
    w: &mut W,
    map: &ProvenanceMap,
    atoms: &AtomTable,
    symbols: Option<&SymbolMap>,
) -> io::Result<()> {
    writeln!(w, "{{")?;
    writeln!(w, "  \"schema\": \"taintvp-flow/v1\",")?;
    writeln!(w, "  \"atoms\": [")?;
    let paths: Vec<FlowPath<'_>> = map.paths().collect();
    for (pi, path) in paths.iter().enumerate() {
        let a = path.atom;
        writeln!(w, "    {{")?;
        writeln!(w, "      \"atom\": {a},")?;
        match atoms.name(a) {
            Some(n) => writeln!(w, "      \"name\": {},", json_str(n))?,
            None => writeln!(w, "      \"name\": null,")?,
        }
        match path.origin {
            Some(o) => writeln!(
                w,
                "      \"origin\": {{\"source\": {}, \"addr\": {}, \"time_ns\": {}}},",
                json_str(&o.source),
                opt_u32_json(o.addr),
                o.time.as_ns()
            )?,
            None => writeln!(w, "      \"origin\": null,")?,
        }
        writeln!(w, "      \"evicted\": {},", path.evicted)?;
        writeln!(w, "      \"hops\": [")?;
        for (i, hop) in path.hops.iter().enumerate() {
            let extra = match &hop.kind {
                HopKind::Reg(r) => format!(", \"reg\": {r}"),
                HopKind::Tlm { bus, target } => {
                    format!(", \"bus\": {}, \"target\": {}", json_str(bus), json_str(target))
                }
                _ => String::new(),
            };
            let sym = hop
                .pc
                .and_then(|pc| symbols.and_then(|m| m.resolve(pc)))
                .map(|(name, off)| format!(", \"symbol\": {}, \"offset\": {off}", json_str(name)))
                .unwrap_or_default();
            writeln!(
                w,
                "        {{\"kind\": {}, \"pc\": {}, \"addr\": {}, \"time_ns\": {}, \"repeats\": {}{extra}{sym}}}{}",
                json_str(hop.kind.label()),
                opt_u32_json(hop.pc),
                opt_u32_json(hop.addr),
                hop.time.as_ns(),
                hop.repeats,
                if i + 1 == path.hops.len() { "" } else { "," }
            )?;
        }
        writeln!(w, "      ],")?;
        match path.sink {
            Some(s) => writeln!(
                w,
                "      \"sink\": {{\"site\": {}, \"pc\": {}, \"time_ns\": {}}}",
                json_str(&s.site),
                opt_u32_json(s.pc),
                s.time.as_ns()
            )?,
            None => writeln!(w, "      \"sink\": null")?,
        }
        writeln!(w, "    }}{}", if pi + 1 == paths.len() { "" } else { "," })?;
    }
    writeln!(w, "  ]")?;
    writeln!(w, "}}")
}

/// Renders one atom's source→sink path as indented text with symbol
/// names and, where the raw instruction bits are known, disassembly.
/// `insn_of` maps a hop PC to its captured `(word, compressed)` bits.
pub fn render_path(
    path: &FlowPath<'_>,
    atoms: &AtomTable,
    symbols: Option<&SymbolMap>,
    insn_of: &dyn Fn(u32) -> Option<(u32, bool)>,
) -> String {
    let mut out = String::new();
    out.push_str(&format!("flow of {}:\n", atom_label(atoms, path.atom)));
    match path.origin {
        Some(o) => {
            out.push_str(&format!("  source  {} ", o.source));
            if let Some(addr) = o.addr {
                out.push_str(&format!("@{addr:#x} "));
            }
            out.push_str(&format!("(classified at t={})\n", o.time));
        }
        None => out.push_str("  source  (classification not recorded)\n"),
    }
    if path.evicted > 0 {
        out.push_str(&format!("  ...     ({} older hops evicted from ring)\n", path.evicted));
    }
    for hop in path.hops {
        out.push_str(&format!("  hop     {}\n", hop_text(hop, symbols)));
        if let Some(pc) = hop.pc {
            if let Some((word, compressed)) = insn_of(pc) {
                let raw = RawInsn::from_retired(word, compressed);
                out.push_str(&format!("          {}\n", raw.disassemble()));
            }
        }
    }
    match path.sink {
        Some(s) => {
            out.push_str(&format!("  sink    {} ", s.site));
            if let Some(pc) = fmt_pc(s.pc, symbols) {
                out.push_str(&format!("at {pc} "));
            }
            out.push_str(&format!("(violation at t={})\n", s.time));
        }
        None => out.push_str("  sink    (no violation recorded)\n"),
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::provenance::Hop;
    use vpdift_core::Tag;
    use vpdift_kernel::SimTime;

    fn sample_map() -> (ProvenanceMap, AtomTable) {
        let atoms = AtomTable::from_names(["pin"]);
        let t = Tag::atom(0);
        let mut map = ProvenanceMap::default();
        map.classify(t, "pin", Some(0x2000), SimTime::from_ns(10));
        map.record_hop(
            t,
            Hop {
                kind: HopKind::Load,
                pc: Some(0x40),
                addr: Some(0x2000),
                time: SimTime::from_ns(20),
                repeats: 4,
            },
        );
        map.record_hop(
            t,
            Hop {
                kind: HopKind::Tlm { bus: "sys-bus".into(), target: "uart".into() },
                pc: None,
                addr: Some(0x1000_0000),
                time: SimTime::from_ns(30),
                repeats: 1,
            },
        );
        map.record_sink(t, "uart.tx", Some(0x44), SimTime::from_ns(30));
        (map, atoms)
    }

    #[test]
    fn dot_output_is_structurally_valid() {
        let (map, atoms) = sample_map();
        let mut buf = Vec::new();
        write_dot(&mut buf, &map, &atoms, None).unwrap();
        let dot = String::from_utf8(buf).unwrap();
        assert!(dot.starts_with("digraph taint_flow {"), "{dot}");
        assert!(dot.trim_end().ends_with('}'), "{dot}");
        assert!(dot.contains("subgraph cluster_atom0"), "{dot}");
        assert!(dot.contains("source: pin"), "{dot}");
        assert!(dot.contains("sink: uart.tx"), "{dot}");
        assert!(dot.contains("->"), "{dot}");
        // Balanced braces => parses structurally.
        let open = dot.matches('{').count();
        let close = dot.matches('}').count();
        assert_eq!(open, close, "unbalanced braces: {dot}");
    }

    #[test]
    fn json_output_validates_and_carries_schema() {
        let (map, atoms) = sample_map();
        let mut buf = Vec::new();
        write_json(&mut buf, &map, &atoms, None).unwrap();
        let json = String::from_utf8(buf).unwrap();
        crate::export::validate_json(&json).expect("flow JSON must be structurally valid");
        assert!(json.contains("\"schema\": \"taintvp-flow/v1\""), "{json}");
        assert!(json.contains("\"repeats\": 4"), "{json}");
        assert!(json.contains("\"target\": \"uart\""), "{json}");
    }

    #[test]
    fn render_path_shows_source_hops_and_sink() {
        let (map, atoms) = sample_map();
        let symbols = SymbolMap::from_symbols([(0x40u32, "leak_loop".to_owned())]);
        let path = map.shortest_path(Tag::atom(0)).unwrap();
        // 0x2000(s0) lbu t0 -> raw bits for "lbu t0, 0(s0)" = 0x00044283.
        let text = render_path(&path, &atoms, Some(&symbols), &|pc| {
            (pc == 0x40).then_some((0x0004_4283, false))
        });
        assert!(text.contains("source  pin @0x2000"), "{text}");
        assert!(text.contains("<leak_loop>"), "{text}");
        assert!(text.contains("lbu"), "disassembly of the load hop: {text}");
        assert!(text.contains("sink    uart.tx"), "{text}");
        assert!(text.contains("x4"), "repeat count shown: {text}");
    }

    #[test]
    fn empty_map_exports_cleanly() {
        let map = ProvenanceMap::default();
        let atoms = AtomTable::default();
        let mut dot = Vec::new();
        write_dot(&mut dot, &map, &atoms, None).unwrap();
        let mut json = Vec::new();
        write_json(&mut json, &map, &atoms, None).unwrap();
        crate::export::validate_json(&String::from_utf8(json).unwrap()).unwrap();
    }
}
