//! Taint provenance: which classification site introduced each atom.

use vpdift_core::Tag;
use vpdift_kernel::SimTime;

use crate::sink::ATOM_SLOTS;

/// Where an atom was first introduced into the system.
#[derive(Debug, Clone, PartialEq)]
pub struct Origin {
    /// The classification site: a policy region name or a peripheral
    /// source name such as `"terminal.rx"`.
    pub source: String,
    /// Start address for memory-region classification, `None` for
    /// peripheral ingress.
    pub addr: Option<u32>,
    /// Simulated time of the first sighting.
    pub time: SimTime,
}

/// First-classification-wins map from taint atom to its [`Origin`].
#[derive(Debug, Clone, Default)]
pub struct ProvenanceMap {
    origins: [Option<Origin>; ATOM_SLOTS],
}

impl ProvenanceMap {
    /// Records a classification event: every atom of `tag` not yet seen
    /// gets `source`/`addr` as its origin. Later sightings are ignored —
    /// the *first* ingress is the provenance.
    pub fn classify(&mut self, tag: Tag, source: &str, addr: Option<u32>, time: SimTime) {
        for atom in tag.atoms() {
            let slot = &mut self.origins[atom as usize];
            if slot.is_none() {
                *slot = Some(Origin { source: source.to_owned(), addr, time });
            }
        }
    }

    /// The origin of `atom`, if one was recorded.
    pub fn origin(&self, atom: u32) -> Option<&Origin> {
        self.origins.get(atom as usize).and_then(|o| o.as_ref())
    }

    /// Iterates `(atom, origin)` for every atom of `tag` with a known
    /// origin.
    pub fn origins_of(&self, tag: Tag) -> impl Iterator<Item = (u32, &Origin)> {
        tag.atoms().filter_map(move |a| self.origin(a).map(|o| (a, o)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_classification_wins() {
        let mut p = ProvenanceMap::default();
        p.classify(Tag::from_bits(0b11), "key-region", Some(0x2000), SimTime::from_ns(5));
        p.classify(Tag::atom(0), "terminal.rx", None, SimTime::from_ns(9));
        let o = p.origin(0).unwrap();
        assert_eq!(o.source, "key-region", "later sighting does not overwrite");
        assert_eq!(o.addr, Some(0x2000));
        assert_eq!(p.origin(1).unwrap().source, "key-region");
        assert!(p.origin(2).is_none());
    }

    #[test]
    fn origins_of_filters_to_known_atoms() {
        let mut p = ProvenanceMap::default();
        p.classify(Tag::atom(3), "can.rx", None, SimTime::ZERO);
        let found: Vec<u32> = p.origins_of(Tag::from_bits(0b1100)).map(|(a, _)| a).collect();
        assert_eq!(found, vec![3], "atom 2 has no origin and is skipped");
    }
}
