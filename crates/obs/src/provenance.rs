//! Taint provenance: a bounded propagation DAG per atom.
//!
//! PR 1's provenance was a single fact per atom — *which classification
//! site minted it*. This module grows that into the flow graph the
//! `--explain` machinery walks: for every atom, the classification site
//! (the DAG source), a bounded ring of *hops* (instruction-level and TLM
//! propagation steps the atom was seen taking), and the last sink that
//! rejected it (the DAG sink). Consecutive identical hops — an atom
//! circulating through the same instruction in a loop — fold into one
//! node with a repeat count, so a bounded ring still spans long runs.

use vpdift_core::Tag;
use vpdift_kernel::SimTime;

use crate::sink::ATOM_SLOTS;

/// Per-atom hop-ring capacity. Old hops are evicted (and counted) once a
/// ring is full; with consecutive-duplicate folding this comfortably spans
/// the tail of a run.
pub const HOP_CAP: usize = 32;

/// Where an atom was first introduced into the system.
#[derive(Debug, Clone, PartialEq)]
pub struct Origin {
    /// The classification site: a policy region name or a peripheral
    /// source name such as `"terminal.rx"`.
    pub source: String,
    /// Start address for memory-region classification, `None` for
    /// peripheral ingress.
    pub addr: Option<u32>,
    /// Simulated time of the first sighting.
    pub time: SimTime,
}

/// What kind of propagation step a [`Hop`] records.
#[derive(Debug, Clone, PartialEq)]
pub enum HopKind {
    /// The atom flowed into architectural register `x<n>`.
    Reg(u8),
    /// The atom was loaded from memory.
    Load,
    /// The atom was stored to memory.
    Store,
    /// The atom crossed a TLM interconnect.
    Tlm {
        /// Routing bus name.
        bus: String,
        /// Addressed target name.
        target: String,
    },
}

impl HopKind {
    /// Short label used in reports and exports.
    pub fn label(&self) -> &'static str {
        match self {
            HopKind::Reg(_) => "reg",
            HopKind::Load => "load",
            HopKind::Store => "store",
            HopKind::Tlm { .. } => "tlm",
        }
    }
}

/// One recorded propagation step of an atom.
#[derive(Debug, Clone, PartialEq)]
pub struct Hop {
    /// What happened.
    pub kind: HopKind,
    /// PC of the instruction that moved the atom (TLM hops have none).
    pub pc: Option<u32>,
    /// Memory/bus address involved, when there is one.
    pub addr: Option<u32>,
    /// Simulated time of the first occurrence.
    pub time: SimTime,
    /// How many consecutive identical occurrences this hop folds
    /// (1 = seen once).
    pub repeats: u64,
}

impl Hop {
    fn same_site(&self, other: &Hop) -> bool {
        self.kind == other.kind && self.pc == other.pc && self.addr == other.addr
    }
}

/// The sink that last rejected an atom — the end of its recorded path.
#[derive(Debug, Clone, PartialEq)]
pub struct SinkRec {
    /// Violation site label (sink/region/component name, or the check
    /// kind for unnamed checks).
    pub site: String,
    /// PC of the violating access, when known.
    pub pc: Option<u32>,
    /// Simulated time of the violation.
    pub time: SimTime,
}

/// Bounded per-atom hop ring. A plain `Vec` with front eviction: the
/// capacity is small and eviction only happens on tagged events, so the
/// `O(HOP_CAP)` shift is noise next to the event clone that preceded it.
#[derive(Debug, Clone, Default)]
struct HopRing {
    hops: Vec<Hop>,
    evicted: u64,
}

impl HopRing {
    /// Returns `true` when the hop became a *new* node (folding into the
    /// previous node's repeat count is not a graph change).
    fn push(&mut self, hop: Hop) -> bool {
        if let Some(last) = self.hops.last_mut() {
            if last.same_site(&hop) {
                last.repeats += 1;
                return false;
            }
        }
        if self.hops.len() == HOP_CAP {
            self.hops.remove(0);
            self.evicted += 1;
        }
        self.hops.push(hop);
        true
    }
}

/// One incremental change to the recorded flow graph, for live streaming.
/// Only produced after [`ProvenanceMap::enable_deltas`]; batch consumers
/// (DOT/JSON export, `--explain`) never pay for the queue.
#[derive(Debug, Clone, PartialEq)]
pub enum FlowDelta {
    /// An atom gained its origin (first classification).
    Origin {
        /// The newly classified atom.
        atom: u32,
        /// Classification site name.
        source: String,
        /// Classification address, when there is one.
        addr: Option<u32>,
    },
    /// A new hop node was appended to an atom's path. Repeat folds of the
    /// newest node do not produce deltas — the node is unchanged.
    Hop {
        /// The atom that moved.
        atom: u32,
        /// The recorded step.
        hop: Hop,
    },
    /// An atom's rejecting sink was set (or replaced by a later one).
    Sink {
        /// The rejected atom.
        atom: u32,
        /// Violation site label.
        site: String,
        /// PC of the violating access, when known.
        pc: Option<u32>,
    },
}

/// One atom's recorded source→hops→sink path, borrowed from the map.
#[derive(Debug, Clone)]
pub struct FlowPath<'a> {
    /// The atom this path belongs to.
    pub atom: u32,
    /// Classification site, if one was observed.
    pub origin: Option<&'a Origin>,
    /// Recorded hops, oldest first.
    pub hops: &'a [Hop],
    /// Hops evicted from the bounded ring before these.
    pub evicted: u64,
    /// The sink that rejected the atom, if a violation was recorded.
    pub sink: Option<&'a SinkRec>,
}

/// Per-atom propagation DAG: first classification (source), a bounded
/// hop ring, and the last rejecting sink.
#[derive(Debug, Clone, Default)]
pub struct ProvenanceMap {
    origins: [Option<Origin>; ATOM_SLOTS],
    hops: [HopRing; ATOM_SLOTS],
    sinks: [Option<SinkRec>; ATOM_SLOTS],
    /// Incremental-change queue; `None` until
    /// [`ProvenanceMap::enable_deltas`].
    deltas: Option<Vec<FlowDelta>>,
}

impl ProvenanceMap {
    /// Starts queueing [`FlowDelta`]s for every graph change from here on.
    pub fn enable_deltas(&mut self) {
        if self.deltas.is_none() {
            self.deltas = Some(Vec::new());
        }
    }

    /// Removes and returns all queued deltas (empty when delta tracking
    /// is off or nothing changed since the last take).
    pub fn take_deltas(&mut self) -> Vec<FlowDelta> {
        self.deltas.as_mut().map(std::mem::take).unwrap_or_default()
    }
    /// Records a classification event: every atom of `tag` not yet seen
    /// gets `source`/`addr` as its origin. Later sightings are ignored —
    /// the *first* ingress is the provenance. Atoms outside the slot
    /// range (a saturated or corrupted tag) are skipped, not indexed:
    /// fail-closed tags must never panic the observer.
    pub fn classify(&mut self, tag: Tag, source: &str, addr: Option<u32>, time: SimTime) {
        for atom in tag.atoms() {
            let Some(slot) = self.origins.get_mut(atom as usize) else { continue };
            if slot.is_none() {
                *slot = Some(Origin { source: source.to_owned(), addr, time });
                if let Some(q) = &mut self.deltas {
                    q.push(FlowDelta::Origin { atom, source: source.to_owned(), addr });
                }
            }
        }
    }

    /// Records one propagation step for every atom of `tag`.
    pub fn record_hop(&mut self, tag: Tag, hop: Hop) {
        for atom in tag.atoms() {
            if let Some(ring) = self.hops.get_mut(atom as usize) {
                if ring.push(hop.clone()) {
                    if let Some(q) = &mut self.deltas {
                        q.push(FlowDelta::Hop { atom, hop: hop.clone() });
                    }
                }
            }
        }
    }

    /// Records the sink that rejected `tag` (the path end for each atom).
    /// The *last* rejection wins: it is the one the run stopped on.
    pub fn record_sink(&mut self, tag: Tag, site: &str, pc: Option<u32>, time: SimTime) {
        for atom in tag.atoms() {
            if let Some(slot) = self.sinks.get_mut(atom as usize) {
                *slot = Some(SinkRec { site: site.to_owned(), pc, time });
                if let Some(q) = &mut self.deltas {
                    q.push(FlowDelta::Sink { atom, site: site.to_owned(), pc });
                }
            }
        }
    }

    /// The origin of `atom`, if one was recorded.
    pub fn origin(&self, atom: u32) -> Option<&Origin> {
        self.origins.get(atom as usize).and_then(|o| o.as_ref())
    }

    /// Iterates `(atom, origin)` for every atom of `tag` with a known
    /// origin.
    pub fn origins_of(&self, tag: Tag) -> impl Iterator<Item = (u32, &Origin)> {
        tag.atoms().filter_map(move |a| self.origin(a).map(|o| (a, o)))
    }

    /// The recorded hops of `atom`, oldest first.
    pub fn hops_of(&self, atom: u32) -> &[Hop] {
        self.hops.get(atom as usize).map(|r| r.hops.as_slice()).unwrap_or(&[])
    }

    /// `true` when any atom has at least one recorded hop or origin.
    pub fn has_flows(&self) -> bool {
        self.origins.iter().any(|o| o.is_some()) || self.hops.iter().any(|r| !r.hops.is_empty())
    }

    /// The full recorded path of `atom`, or `None` for an atom nothing
    /// was ever recorded about.
    pub fn path(&self, atom: u32) -> Option<FlowPath<'_>> {
        let idx = atom as usize;
        if idx >= ATOM_SLOTS {
            return None;
        }
        let origin = self.origins[idx].as_ref();
        let ring = &self.hops[idx];
        let sink = self.sinks[idx].as_ref();
        if origin.is_none() && ring.hops.is_empty() && sink.is_none() {
            return None;
        }
        Some(FlowPath { atom, origin, hops: self.hops_of(atom), evicted: ring.evicted, sink })
    }

    /// The *shortest recorded* source→sink path among the atoms of
    /// `tag`: atoms with a known origin are preferred, then fewer hops,
    /// then the lowest atom index. `None` when nothing was recorded for
    /// any atom of `tag`.
    pub fn shortest_path(&self, tag: Tag) -> Option<FlowPath<'_>> {
        tag.atoms()
            .filter_map(|a| self.path(a))
            .min_by_key(|p| (p.origin.is_none(), p.hops.len(), p.atom))
    }

    /// Iterates every atom with any recorded state, in atom order.
    pub fn paths(&self) -> impl Iterator<Item = FlowPath<'_>> {
        (0..ATOM_SLOTS as u32).filter_map(move |a| self.path(a))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hop(kind: HopKind, pc: u32, addr: Option<u32>) -> Hop {
        Hop { kind, pc: Some(pc), addr, time: SimTime::ZERO, repeats: 1 }
    }

    #[test]
    fn first_classification_wins() {
        let mut p = ProvenanceMap::default();
        p.classify(Tag::from_bits(0b11), "key-region", Some(0x2000), SimTime::from_ns(5));
        p.classify(Tag::atom(0), "terminal.rx", None, SimTime::from_ns(9));
        let o = p.origin(0).unwrap();
        assert_eq!(o.source, "key-region", "later sighting does not overwrite");
        assert_eq!(o.addr, Some(0x2000));
        assert_eq!(p.origin(1).unwrap().source, "key-region");
        assert!(p.origin(2).is_none());
    }

    #[test]
    fn origins_of_filters_to_known_atoms() {
        let mut p = ProvenanceMap::default();
        p.classify(Tag::atom(3), "can.rx", None, SimTime::ZERO);
        let found: Vec<u32> = p.origins_of(Tag::from_bits(0b1100)).map(|(a, _)| a).collect();
        assert_eq!(found, vec![3], "atom 2 has no origin and is skipped");
    }

    #[test]
    fn saturated_tag_classifies_without_panicking() {
        // PR 2's fail-closed rule saturates unknown tags to lattice top:
        // every slot bit set. classify must handle it bounds-safely.
        let mut p = ProvenanceMap::default();
        let top = Tag::from_bits(u32::MAX);
        p.classify(top, "fail-closed", None, SimTime::from_ns(1));
        p.record_hop(top, hop(HopKind::Load, 0x40, Some(0x100)));
        p.record_sink(top, "uart.tx", Some(0x44), SimTime::from_ns(2));
        for atom in top.atoms() {
            assert_eq!(p.origin(atom).unwrap().source, "fail-closed");
            assert_eq!(p.path(atom).unwrap().hops.len(), 1);
        }
    }

    #[test]
    fn consecutive_identical_hops_fold() {
        let mut p = ProvenanceMap::default();
        let t = Tag::atom(0);
        for _ in 0..5 {
            p.record_hop(t, hop(HopKind::Load, 0x40, Some(0x2000)));
        }
        p.record_hop(t, hop(HopKind::Reg(5), 0x40, None));
        let hops = p.hops_of(0);
        assert_eq!(hops.len(), 2, "5 identical loads fold into one hop");
        assert_eq!(hops[0].repeats, 5);
        assert_eq!(hops[1].kind, HopKind::Reg(5));
    }

    #[test]
    fn ring_is_bounded_and_counts_evictions() {
        let mut p = ProvenanceMap::default();
        let t = Tag::atom(1);
        for i in 0..(HOP_CAP as u32 + 10) {
            p.record_hop(t, hop(HopKind::Store, 0x100 + 4 * i, Some(i)));
        }
        let path = p.path(1).unwrap();
        assert_eq!(path.hops.len(), HOP_CAP);
        assert_eq!(path.evicted, 10);
        // Oldest surviving hop is hop #10.
        assert_eq!(path.hops[0].pc, Some(0x100 + 4 * 10));
    }

    #[test]
    fn shortest_path_prefers_origin_then_fewest_hops() {
        let mut p = ProvenanceMap::default();
        // Atom 0: origin + 3 hops. Atom 1: origin + 1 hop. Atom 2: hops
        // but no origin.
        p.classify(Tag::from_bits(0b11), "pin", Some(0x2000), SimTime::ZERO);
        for i in 0..3 {
            p.record_hop(Tag::atom(0), hop(HopKind::Load, 0x10 + 4 * i, None));
        }
        p.record_hop(Tag::atom(1), hop(HopKind::Load, 0x40, None));
        p.record_hop(Tag::atom(2), hop(HopKind::Load, 0x50, None));
        let best = p.shortest_path(Tag::from_bits(0b111)).unwrap();
        assert_eq!(best.atom, 1, "origin-backed path with fewest hops wins");
        let orphan = p.shortest_path(Tag::atom(2)).unwrap();
        assert!(orphan.origin.is_none(), "origin-less path still returned when alone");
    }

    #[test]
    fn sink_records_the_last_rejection() {
        let mut p = ProvenanceMap::default();
        p.record_sink(Tag::atom(0), "uart.tx", Some(0x44), SimTime::from_ns(1));
        p.record_sink(Tag::atom(0), "can.tx", None, SimTime::from_ns(2));
        let path = p.path(0).unwrap();
        assert_eq!(path.sink.unwrap().site, "can.tx", "last rejection wins");
    }

    #[test]
    fn deltas_queue_only_real_graph_changes() {
        let mut p = ProvenanceMap::default();
        // Nothing queued while deltas are off.
        p.classify(Tag::atom(0), "pin", Some(0x2000), SimTime::ZERO);
        assert!(p.take_deltas().is_empty());

        p.enable_deltas();
        // Re-classification of a known atom is not a change.
        p.classify(Tag::atom(0), "terminal.rx", None, SimTime::from_ns(1));
        // A fresh atom is.
        p.classify(Tag::atom(1), "can.rx", None, SimTime::from_ns(2));
        // Three identical hops fold into one node: one delta.
        for _ in 0..3 {
            p.record_hop(Tag::atom(0), hop(HopKind::Load, 0x40, Some(0x2000)));
        }
        p.record_sink(Tag::atom(0), "uart.tx", Some(0x44), SimTime::from_ns(3));

        let deltas = p.take_deltas();
        assert_eq!(deltas.len(), 3, "{deltas:?}");
        assert!(
            matches!(&deltas[0], FlowDelta::Origin { atom: 1, source, .. } if source == "can.rx")
        );
        assert!(matches!(&deltas[1], FlowDelta::Hop { atom: 0, .. }));
        assert!(matches!(&deltas[2], FlowDelta::Sink { atom: 0, site, .. } if site == "uart.tx"));
        assert!(p.take_deltas().is_empty(), "take drains the queue");
    }

    #[test]
    fn out_of_range_atom_path_is_none() {
        let p = ProvenanceMap::default();
        assert!(p.path(ATOM_SLOTS as u32 + 5).is_none());
        assert!(p.shortest_path(Tag::EMPTY).is_none());
    }
}
