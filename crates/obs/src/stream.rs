//! Live-introspection sink: taint watchpoints, a cooperative stop flag,
//! and a bounded buffer of streamable items.
//!
//! Where the [`Recorder`](crate::Recorder) aggregates for post-mortem
//! reports, the [`StreamSink`] wraps one and additionally makes the event
//! stream *interactive*: a serve layer registers [`Watch`]points, runs the
//! VP in slices, and between slices [`drain`](StreamSink::drain)s whatever
//! matched the subscription — filtered [`ObsEvent`]s, incremental
//! flow-graph [`FlowDelta`]s, and watch hits. When a watchpoint triggers
//! it raises a shared [`StopFlag`] that the SoC run loop polls, so the
//! simulation breaks mid-run instead of at the next exit condition.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use vpdift_core::Tag;
use vpdift_kernel::SimTime;

use crate::event::ObsEvent;
use crate::provenance::FlowDelta;
use crate::recorder::Recorder;
use crate::ring::TimedEvent;
use crate::sink::{ObsSink, ATOM_SLOTS};

/// Default bound on the number of buffered [`StreamItem`]s; older items
/// are dropped (and counted) when a client does not drain fast enough.
pub const STREAM_BUF_CAP: usize = 4096;

/// A shared, cloneable "please stop" latch between a watchpoint evaluator
/// (or any other controller — fleet deadline reapers raise it from another
/// thread) and the SoC run loop. The loop polls
/// [`is_requested`](StopFlag::is_requested) every step regardless of the
/// attached sink: the unraised-flag check is a single relaxed atomic load,
/// cheap enough for the `NullSink` hot path, and polling unconditionally
/// is what lets a fleet executor deadline-kill a wedged session that runs
/// without observability. Raised flags end the run with
/// `SocExit::Stopped`.
#[derive(Clone, Debug, Default)]
pub struct StopFlag(Arc<AtomicBool>);

impl StopFlag {
    /// A fresh, unraised flag.
    pub fn new() -> Self {
        StopFlag::default()
    }

    /// Raises the flag. Safe from any thread.
    pub fn request(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// `true` while the flag is raised.
    #[inline]
    pub fn is_requested(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// Lowers the flag, returning whether it was raised. The fast path
    /// (flag not raised) is a single relaxed load.
    #[inline]
    pub fn take(&self) -> bool {
        if !self.0.load(Ordering::Relaxed) {
            return false;
        }
        self.0.swap(false, Ordering::AcqRel)
    }
}

/// A shared, cloneable live counter of retired instructions, published
/// with relaxed stores at quantum boundaries by the SoC run loop (see
/// `SocBuilder::insn_cell`) and read by external samplers — a fleet
/// telemetry thread can report aggregate MIPS for sessions still
/// mid-run (including wedged ones a deadline reaper is about to kill).
/// Like [`StopFlag`], the cost when nobody attached a cell is one
/// branch per quantum, not per instruction.
#[derive(Clone, Debug, Default)]
pub struct InsnCell(Arc<std::sync::atomic::AtomicU64>);

impl InsnCell {
    /// A fresh zeroed cell.
    pub fn new() -> Self {
        InsnCell::default()
    }

    /// Adds `n` retired instructions (relaxed; safe from the run loop).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count (relaxed; may trail in-flight adds).
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// What a [`Breakpoint`] fires on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakKind {
    /// Stop *before* executing the instruction at this PC. Persists
    /// across hits; resuming steps over it once (see [`BreakSet::check`]).
    Pc(u32),
    /// Stop once the retired-instruction count reaches this value.
    /// One-shot: removed automatically when it fires.
    Instret(u64),
}

impl core::fmt::Display for BreakKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BreakKind::Pc(pc) => write!(f, "pc={pc:#010x}"),
            BreakKind::Instret(n) => write!(f, "instret={n}"),
        }
    }
}

/// A registered breakpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Breakpoint {
    /// Identifier assigned at registration, used to unregister and to
    /// attribute hits.
    pub id: u32,
    /// What it fires on.
    pub kind: BreakKind,
}

/// The record a fired breakpoint leaves behind, retrievable once via
/// [`BreakSet::take_hit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakHit {
    /// Which breakpoint fired.
    pub id: u32,
    /// Its kind at the time it fired.
    pub kind: BreakKind,
    /// PC of the instruction about to execute when the run stopped.
    pub pc: u32,
    /// Retired-instruction count at the stop.
    pub instret: u64,
}

#[derive(Debug, Default)]
struct BreakState {
    bps: Vec<Breakpoint>,
    next_id: u32,
    /// `(pc, instret)` of the last hit; consumed by the first
    /// [`check`](BreakSet::check) after a resume so a persistent PC
    /// breakpoint does not immediately re-fire on the same instruction.
    resume: Option<(u32, u64)>,
    hit: Option<BreakHit>,
}

#[derive(Debug, Default)]
struct BreakInner {
    /// Fast-path gate: `true` while any breakpoint is registered. The
    /// run loop reads this (one relaxed load) before touching the mutex,
    /// so sessions without breakpoints never contend.
    armed: AtomicBool,
    state: Mutex<BreakState>,
}

/// A shared, cloneable set of PC / instruction-count breakpoints,
/// evaluated by the SoC run loop *before* each instruction executes.
///
/// Like [`StopFlag`], clones share state, so a serve registry can arm
/// and disarm breakpoints from another thread while the session runs.
/// Unlike the stop poll — which is unconditional so deadline reapers
/// reach `NullSink` fleets — the breakpoint check is observability-gated
/// in the run loop and additionally gated on [`armed`](BreakSet::armed),
/// keeping batch runs at zero cost.
#[derive(Clone, Debug, Default)]
pub struct BreakSet(Arc<BreakInner>);

impl BreakSet {
    /// A fresh, empty set.
    pub fn new() -> Self {
        BreakSet::default()
    }

    /// Registers a breakpoint and returns its id. Ids are never reused.
    pub fn add(&self, kind: BreakKind) -> u32 {
        let mut st = self.0.state.lock().unwrap();
        st.next_id += 1;
        let id = st.next_id;
        st.bps.push(Breakpoint { id, kind });
        self.0.armed.store(true, Ordering::Release);
        id
    }

    /// Unregisters breakpoint `id`; `false` when no such breakpoint
    /// exists.
    pub fn remove(&self, id: u32) -> bool {
        let mut st = self.0.state.lock().unwrap();
        let before = st.bps.len();
        st.bps.retain(|b| b.id != id);
        let removed = st.bps.len() != before;
        if st.bps.is_empty() {
            self.0.armed.store(false, Ordering::Release);
        }
        removed
    }

    /// The registered breakpoints, in registration order.
    pub fn list(&self) -> Vec<Breakpoint> {
        self.0.state.lock().unwrap().bps.clone()
    }

    /// `true` while any breakpoint is registered — a single relaxed
    /// load, the run loop's pre-check before paying for the mutex.
    #[inline]
    pub fn armed(&self) -> bool {
        self.0.armed.load(Ordering::Relaxed)
    }

    /// Evaluates the set against the instruction about to execute.
    /// Returns `true` when a breakpoint fires (the run loop should stop
    /// with `SocExit::Stopped`); the hit is recorded for
    /// [`take_hit`](BreakSet::take_hit).
    ///
    /// The first call after a hit with the *same* `(pc, instret)` —
    /// i.e. resuming at the instruction the break stopped in front of —
    /// skips PC breakpoints once, so persistent PC breaks don't pin the
    /// session in place. Instret breakpoints fire when
    /// `instret >= n` and are removed as they fire.
    pub fn check(&self, pc: u32, instret: u64) -> bool {
        let mut st = self.0.state.lock().unwrap();
        let skip_pc = st.resume.take() == Some((pc, instret));
        let fired = st.bps.iter().find_map(|b| match b.kind {
            BreakKind::Pc(bp) if !skip_pc && bp == pc => Some(*b),
            BreakKind::Instret(n) if instret >= n => Some(*b),
            _ => None,
        });
        let Some(bp) = fired else { return false };
        if matches!(bp.kind, BreakKind::Instret(_)) {
            st.bps.retain(|b| b.id != bp.id);
            if st.bps.is_empty() {
                self.0.armed.store(false, Ordering::Release);
            }
        }
        st.resume = Some((pc, instret));
        st.hit = Some(BreakHit { id: bp.id, kind: bp.kind, pc, instret });
        true
    }

    /// Removes and returns the record of the most recent hit, if any.
    pub fn take_hit(&self) -> Option<BreakHit> {
        self.0.state.lock().unwrap().hit.take()
    }
}

/// What a taint watchpoint watches for.
#[derive(Debug, Clone, PartialEq)]
pub enum WatchKind {
    /// Tainted data reached the named check site (e.g. `"uart.tx"`):
    /// triggers on any check there whose tag is non-empty, or — with
    /// `atom` set — carries that specific atom. Fires whether or not the
    /// check passes, so a leak is caught even under a permissive policy.
    Sink {
        /// The named check site.
        site: String,
        /// Restrict to one atom; `None` matches any non-empty tag.
        atom: Option<u32>,
    },
    /// The tag set reaching an address range changed: triggers when a
    /// store, write transaction, or classification inside
    /// `[start, start+len)` carries a different tag than the range last
    /// saw (initially the empty tag).
    Range {
        /// First address of the watched range.
        start: u32,
        /// Length of the range in bytes.
        len: u32,
    },
    /// A policy violation was recorded, optionally only at one site.
    Violation {
        /// Restrict to violations at this site; `None` matches all.
        site: Option<String>,
    },
}

/// A registered taint watchpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct Watch {
    /// Identifier assigned at registration, used to unregister and to
    /// attribute hits.
    pub id: u32,
    /// What it watches for.
    pub kind: WatchKind,
}

struct WatchState {
    watch: Watch,
    /// Tag last seen by a [`WatchKind::Range`] watch.
    last: Tag,
    hits: u64,
}

/// One item a subscriber can receive from [`StreamSink::drain`].
#[derive(Debug, Clone, PartialEq)]
pub enum StreamItem {
    /// A subscribed observability event.
    Event(TimedEvent),
    /// An incremental flow-graph change.
    Flow(FlowDelta),
    /// A watchpoint triggered (the stop flag was raised).
    Watch {
        /// Which watchpoint.
        id: u32,
        /// Human-readable trigger description.
        reason: String,
        /// Simulated time of the trigger.
        time: SimTime,
    },
    /// A breakpoint fired: the run stopped *before* executing `pc`.
    /// Synthesized by the serve layer from [`BreakSet::take_hit`] after
    /// a stopped run (the SoC loop itself never touches the stream).
    Break {
        /// Which breakpoint.
        id: u32,
        /// Human-readable trigger description (e.g. `pc=0x00000040`).
        reason: String,
        /// PC of the instruction about to execute.
        pc: u32,
        /// Retired-instruction count at the stop.
        instret: u64,
    },
}

/// An [`ObsSink`] for live sessions: forwards everything into an inner
/// [`Recorder`] (so metrics/explain/flight reports keep working), buffers
/// the items a subscriber asked for, and evaluates watchpoints.
pub struct StreamSink {
    recorder: Recorder,
    now: SimTime,
    /// Subscribed event kinds ([`ObsEvent::label`] values); `None` means
    /// no event subscription, `Some(empty)` means *all* kinds.
    event_filter: Option<Vec<String>>,
    /// Whether flow-graph deltas are streamed.
    flow_subscribed: bool,
    buf: VecDeque<StreamItem>,
    buf_cap: usize,
    dropped: u64,
    watches: Vec<WatchState>,
    next_watch_id: u32,
    stop: StopFlag,
}

impl StreamSink {
    /// Wraps `recorder` (typically built `with_symbols().with_flow_deltas()`)
    /// and ties watch hits to `stop`.
    pub fn new(recorder: Recorder, stop: StopFlag) -> Self {
        StreamSink {
            recorder,
            now: SimTime::ZERO,
            event_filter: None,
            flow_subscribed: false,
            buf: VecDeque::new(),
            buf_cap: STREAM_BUF_CAP,
            dropped: 0,
            watches: Vec::new(),
            next_watch_id: 1,
            stop: StopFlag::new(),
        }
        .with_stop(stop)
    }

    fn with_stop(mut self, stop: StopFlag) -> Self {
        self.stop = stop;
        self
    }

    /// The inner recorder (metrics, provenance, explain, …).
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// Mutable access to the inner recorder.
    pub fn recorder_mut(&mut self) -> &mut Recorder {
        &mut self.recorder
    }

    /// The shared stop flag watch hits raise.
    pub fn stop_flag(&self) -> StopFlag {
        self.stop.clone()
    }

    /// Subscribes to event kinds by [`ObsEvent::label`]; an empty list
    /// subscribes to *all* kinds. Replaces any previous subscription.
    pub fn subscribe_events(&mut self, kinds: Vec<String>) {
        self.event_filter = Some(kinds);
    }

    /// Cancels the event subscription (flow/watch items still stream).
    pub fn unsubscribe_events(&mut self) {
        self.event_filter = None;
    }

    /// Turns flow-graph delta streaming on or off. The inner recorder
    /// must have been built [`Recorder::with_flow_deltas`] for deltas to
    /// exist at all.
    pub fn subscribe_flow(&mut self, on: bool) {
        self.flow_subscribed = on;
    }

    /// Registers a watchpoint and returns its id.
    pub fn add_watch(&mut self, kind: WatchKind) -> u32 {
        let id = self.next_watch_id;
        self.next_watch_id += 1;
        self.watches.push(WatchState { watch: Watch { id, kind }, last: Tag::EMPTY, hits: 0 });
        id
    }

    /// Unregisters watch `id`; `false` when no such watch exists.
    pub fn remove_watch(&mut self, id: u32) -> bool {
        let before = self.watches.len();
        self.watches.retain(|w| w.watch.id != id);
        self.watches.len() != before
    }

    /// The registered watchpoints with their hit counts, in id order.
    pub fn watches(&self) -> impl Iterator<Item = (&Watch, u64)> {
        self.watches.iter().map(|w| (&w.watch, w.hits))
    }

    /// Removes and returns everything buffered since the last drain.
    pub fn drain(&mut self) -> Vec<StreamItem> {
        self.buf.drain(..).collect()
    }

    /// Items dropped because the buffer bound was hit.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    fn push(&mut self, item: StreamItem) {
        if self.buf.len() == self.buf_cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(item);
    }

    /// The tag an event presents to range watches at `addr`, when it is
    /// an address-carrying taint movement.
    fn range_sighting(event: &ObsEvent) -> Option<(u32, Tag)> {
        match event {
            ObsEvent::Store { addr, tag, .. } => Some((*addr, *tag)),
            ObsEvent::Tlm { addr, tag, write: true, .. } => Some((*addr, *tag)),
            ObsEvent::Classify { addr: Some(addr), tag, .. } => Some((*addr, *tag)),
            _ => None,
        }
    }

    fn eval_watches(&mut self, event: &ObsEvent) {
        let mut hits: Vec<(u32, String)> = Vec::new();
        for w in &mut self.watches {
            match &w.watch.kind {
                WatchKind::Sink { site, atom } => {
                    let (seen, tag) = match event {
                        ObsEvent::Check { site: Some(s), tag, .. } if s == site => (true, *tag),
                        ObsEvent::TagSetChange { site: s, after, .. } if s == site => {
                            (true, *after)
                        }
                        _ => (false, Tag::EMPTY),
                    };
                    let matched = seen
                        && match atom {
                            Some(a) => tag.contains(Tag::atom(*a)),
                            None => !tag.is_empty(),
                        };
                    if matched {
                        w.hits += 1;
                        hits.push((
                            w.watch.id,
                            format!("tainted data (tag {tag}) reached sink `{site}`"),
                        ));
                    }
                }
                WatchKind::Range { start, len } => {
                    if let Some((addr, tag)) = Self::range_sighting(event) {
                        let in_range = addr.wrapping_sub(*start) < *len;
                        if in_range && tag != w.last {
                            let before = w.last;
                            w.last = tag;
                            w.hits += 1;
                            hits.push((
                                w.watch.id,
                                format!(
                                    "tag set at {addr:#010x} (range {start:#010x}+{len}) changed {before} -> {tag}"
                                ),
                            ));
                        }
                    }
                }
                WatchKind::Violation { site } => {
                    if let ObsEvent::Violation(v) = event {
                        let matched = match site {
                            Some(s) => v.kind.site() == Some(s.as_str()),
                            None => true,
                        };
                        if matched {
                            w.hits += 1;
                            hits.push((w.watch.id, format!("violation: {v}")));
                        }
                    }
                }
            }
        }
        for (id, reason) in hits {
            self.stop.request();
            let time = self.now;
            self.push(StreamItem::Watch { id, reason, time });
        }
    }
}

impl ObsSink for StreamSink {
    fn event(&mut self, event: &ObsEvent) {
        self.recorder.event(event);
        self.eval_watches(event);
        let subscribed = match &self.event_filter {
            None => false,
            Some(kinds) => kinds.is_empty() || kinds.iter().any(|k| k == event.label()),
        };
        if subscribed {
            let item = StreamItem::Event(TimedEvent { time: self.now, event: event.clone() });
            self.push(item);
        }
        if self.flow_subscribed {
            for delta in self.recorder.take_flow_deltas() {
                self.push(StreamItem::Flow(delta));
            }
        }
    }

    fn set_now(&mut self, now: SimTime) {
        self.now = now;
        self.recorder.set_now(now);
    }

    fn taint_spread(&mut self, counts: &[u32; ATOM_SLOTS]) {
        self.recorder.taint_spread(counts);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdift_core::{Violation, ViolationKind};

    use crate::event::CheckKind;

    fn check_at(site: &str, tag: Tag) -> ObsEvent {
        ObsEvent::Check {
            kind: CheckKind::Output,
            tag,
            required: Tag::EMPTY,
            pc: Some(0x44),
            passed: tag.is_empty(),
            site: Some(site.to_owned()),
        }
    }

    fn sink() -> StreamSink {
        StreamSink::new(Recorder::new(8).with_flow_deltas(), StopFlag::new())
    }

    #[test]
    fn stop_flag_latches_and_takes() {
        let f = StopFlag::new();
        let g = f.clone();
        assert!(!f.is_requested());
        g.request();
        assert!(f.is_requested(), "clones share the latch");
        assert!(f.take());
        assert!(!g.is_requested());
        assert!(!f.take());
    }

    #[test]
    fn sink_watch_fires_on_tainted_check_and_raises_stop() {
        let mut s = sink();
        let stop = s.stop_flag();
        let id = s.add_watch(WatchKind::Sink { site: "uart.tx".into(), atom: None });
        s.event(&check_at("uart.tx", Tag::EMPTY));
        assert!(!stop.is_requested(), "untainted check does not fire");
        s.event(&check_at("can.tx", Tag::atom(0)));
        assert!(!stop.is_requested(), "other site does not fire");
        s.event(&check_at("uart.tx", Tag::atom(0)));
        assert!(stop.is_requested());
        let items = s.drain();
        assert!(
            items.iter().any(|i| matches!(i, StreamItem::Watch { id: got, .. } if *got == id)),
            "{items:?}"
        );
    }

    #[test]
    fn sink_watch_with_atom_filters() {
        let mut s = sink();
        let stop = s.stop_flag();
        s.add_watch(WatchKind::Sink { site: "uart.tx".into(), atom: Some(1) });
        s.event(&check_at("uart.tx", Tag::atom(0)));
        assert!(!stop.is_requested(), "wrong atom");
        s.event(&check_at("uart.tx", Tag::atom(0).lub(Tag::atom(1))));
        assert!(stop.is_requested());
    }

    #[test]
    fn range_watch_fires_on_tag_set_change_only() {
        let mut s = sink();
        let stop = s.stop_flag();
        s.add_watch(WatchKind::Range { start: 0x3000, len: 16 });
        let store = |addr, tag| ObsEvent::Store { pc: 0x40, addr, size: 1, tag };
        s.event(&store(0x3004, Tag::EMPTY));
        assert!(!stop.is_requested(), "empty tag == initial state");
        s.event(&store(0x2000, Tag::atom(0)));
        assert!(!stop.is_requested(), "outside the range");
        s.event(&store(0x3004, Tag::atom(0)));
        assert!(stop.take());
        s.event(&store(0x3008, Tag::atom(0)));
        assert!(!stop.is_requested(), "same tag again is not a change");
        s.event(&store(0x300f, Tag::EMPTY));
        assert!(stop.is_requested(), "tag leaving the range is a change too");
    }

    #[test]
    fn violation_watch_matches_site_filter() {
        let mut s = sink();
        let stop = s.stop_flag();
        s.add_watch(WatchKind::Violation { site: Some("uart.tx".into()) });
        let v = |sink: &str| {
            ObsEvent::Violation(Violation::new(
                ViolationKind::Output { sink: sink.into() },
                Tag::atom(0),
                Tag::EMPTY,
            ))
        };
        s.event(&v("can.tx"));
        assert!(!stop.is_requested());
        s.event(&v("uart.tx"));
        assert!(stop.is_requested());
    }

    #[test]
    fn subscription_filters_events_and_streams_flow_deltas() {
        let mut s = sink();
        s.subscribe_events(vec!["classify".into()]);
        s.subscribe_flow(true);
        s.event(&ObsEvent::Trap { pc: 0, cause: 3, irq: false });
        s.event(&ObsEvent::Classify {
            source: "pin".into(),
            tag: Tag::atom(0),
            addr: Some(0x2000),
        });
        let items = s.drain();
        let events: Vec<_> = items.iter().filter(|i| matches!(i, StreamItem::Event(_))).collect();
        assert_eq!(events.len(), 1, "trap filtered out: {items:?}");
        assert!(
            items.iter().any(|i| matches!(i, StreamItem::Flow(FlowDelta::Origin { atom: 0, .. }))),
            "classification produced a flow delta: {items:?}"
        );
        assert!(s.drain().is_empty(), "drain empties the buffer");
        // Metrics still aggregate underneath.
        assert_eq!(s.recorder().metrics().traps, 1);
        assert_eq!(s.recorder().metrics().classifications, 1);
    }

    #[test]
    fn empty_kind_list_subscribes_all_and_buffer_bounds_drop() {
        let mut s = sink();
        s.subscribe_events(Vec::new());
        s.buf_cap = 4;
        for i in 0..10 {
            s.event(&ObsEvent::Trap { pc: i, cause: 3, irq: false });
        }
        assert_eq!(s.drain().len(), 4);
        assert_eq!(s.dropped(), 6);
    }

    #[test]
    fn pc_break_fires_once_then_skips_on_resume() {
        let b = BreakSet::new();
        assert!(!b.armed());
        let id = b.add(BreakKind::Pc(0x40));
        assert!(b.armed());
        assert!(!b.check(0x3c, 10), "other pc does not fire");
        assert!(b.check(0x40, 11));
        let hit = b.take_hit().expect("hit recorded");
        assert_eq!((hit.id, hit.pc, hit.instret), (id, 0x40, 11));
        assert!(b.take_hit().is_none(), "hit is taken once");
        assert!(!b.check(0x40, 11), "resume at the same spot skips the pc break once");
        assert!(b.check(0x40, 15), "but coming back around fires again");
        assert!(b.armed(), "pc breaks persist");
        assert!(b.remove(id));
        assert!(!b.remove(id));
        assert!(!b.armed());
    }

    #[test]
    fn instret_break_is_one_shot_and_clones_share_state() {
        let a = BreakSet::new();
        let b = a.clone();
        let id = b.add(BreakKind::Instret(100));
        assert!(a.armed(), "clones share the set");
        assert!(!a.check(0x10, 99));
        assert!(a.check(0x10, 100));
        assert_eq!(a.take_hit().map(|h| h.id), Some(id));
        assert!(!a.armed(), "instret break removed itself");
        assert!(a.list().is_empty());
        assert!(!a.check(0x14, 101), "does not re-fire");
    }

    #[test]
    fn stale_resume_token_does_not_mask_a_different_pc_hit() {
        let b = BreakSet::new();
        b.add(BreakKind::Pc(0x40));
        b.add(BreakKind::Pc(0x44));
        assert!(b.check(0x40, 5));
        // Resume skips 0x40 at (0x40, 5); the very next instruction is
        // 0x44 and must still fire.
        assert!(!b.check(0x40, 5));
        assert!(b.check(0x44, 6));
    }

    #[test]
    fn remove_watch_stops_firing() {
        let mut s = sink();
        let stop = s.stop_flag();
        let id = s.add_watch(WatchKind::Violation { site: None });
        assert!(s.remove_watch(id));
        assert!(!s.remove_watch(id), "second removal reports missing");
        s.event(&ObsEvent::Violation(Violation::new(
            ViolationKind::Branch,
            Tag::atom(0),
            Tag::EMPTY,
        )));
        assert!(!stop.is_requested());
    }
}
