//! Runs the attack suite on the DIFT-enabled VP and produces Table I.

use vpdift_core::{SecurityPolicy, Tag, Violation, ViolationKind};
use vpdift_rv32::{ExecMode, Tainted};
use vpdift_soc::{Soc, SocExit};

use crate::suite::{all_attacks, Attack};

/// The low-integrity atom used by the §VI-B policy.
pub const LI: Tag = Tag::from_bits(1);

/// Result of running one attack form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// Not applicable in the RISC-V environment (paper column "N/A").
    NotApplicable,
    /// The DIFT engine stopped the injected code at instruction fetch.
    Detected,
    /// The attack succeeded (would be a regression of the DIFT engine).
    Undetected,
}

impl core::fmt::Display for Outcome {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Outcome::NotApplicable => write!(f, "N/A"),
            Outcome::Detected => write!(f, "Detected"),
            Outcome::Undetected => write!(f, "UNDETECTED"),
        }
    }
}

/// The §VI-B security policy: console input is low-integrity, program
/// memory is high-integrity at load, and the instruction-fetch unit
/// requires high integrity.
pub fn code_injection_policy() -> SecurityPolicy {
    SecurityPolicy::builder("code-injection")
        .source("terminal.rx", LI)
        .sink("uart.tx", LI)
        .fetch_clearance(Tag::EMPTY)
        .build()
}

/// Full observable result of one attack run, engine-agnostic — what the
/// differential harness compares between the interpreter and the block
/// cache.
#[derive(Debug, Clone, PartialEq)]
pub struct AttackRun {
    /// How the simulation ended.
    pub exit: SocExit,
    /// Violations the DIFT engine recorded.
    pub violations: Vec<Violation>,
    /// Bytes the guest transmitted on the UART.
    pub uart: Vec<u8>,
    /// Retired instructions.
    pub instret: u64,
    /// Final architectural-state digest ([`Soc::state_digest`]).
    pub digest: u64,
}

/// Runs one applicable attack on the given execution engine and captures
/// everything observable. `None` for attacks without a RISC-V form.
pub fn run_attack_captured(attack: &Attack, benign: bool, engine: ExecMode) -> Option<AttackRun> {
    let form = attack.form.as_ref()?;
    let cfg = Soc::<Tainted>::builder()
        .policy(code_injection_policy())
        .sensor_thread(false)
        .engine(engine)
        .build();
    let mut soc = Soc::<Tainted>::new(cfg);
    soc.load_program(&form.program);

    // "We specifically classify this function as LI before conducting the
    // tests" (paper §VI-B): stamp the payload function.
    let payload = form.program.symbol("payload").expect("payload symbol");
    let end = form.program.symbol("payload_end").expect("payload end marker");
    soc.ram().borrow_mut().classify(payload, (end - payload) as usize, LI);

    let input =
        if benign { form.benign_input.clone() } else { (form.malicious_input)(&form.program) };
    soc.terminal().borrow_mut().feed(&input);

    let exit = soc.run(10_000_000);
    let violations = soc.engine().borrow().violations().to_vec();
    let uart = soc.uart().borrow().output().to_vec();
    Some(AttackRun { exit, violations, uart, instret: soc.instret(), digest: soc.state_digest() })
}

/// Runs one applicable attack with its malicious input; also exercises the
/// benign twin when `benign` is set.
pub fn run_attack(attack: &Attack, benign: bool) -> Outcome {
    let Some(run) = run_attack_captured(attack, benign, ExecMode::Interp) else {
        return Outcome::NotApplicable;
    };
    match run.exit {
        SocExit::Violation(v) if v.kind == ViolationKind::Fetch => Outcome::Detected,
        SocExit::Violation(v) => {
            // Any other violation still stopped the attack, but Table I
            // detection is specifically at instruction fetch; report it.
            panic!("attack #{} raised unexpected {v}", attack.id)
        }
        _ => Outcome::Undetected,
    }
}

/// One row of the reproduced Table I.
#[derive(Debug)]
pub struct TableRow {
    /// The attack definition.
    pub attack: Attack,
    /// The measured outcome.
    pub outcome: Outcome,
    /// The benign twin must run clean (no false positive); `true` = clean.
    pub benign_clean: bool,
}

/// Runs the whole suite.
pub fn table1() -> Vec<TableRow> {
    all_attacks()
        .into_iter()
        .map(|attack| {
            let outcome = run_attack(&attack, false);
            let benign_clean = match &attack.form {
                None => true,
                Some(_) => run_attack(&attack, true) == Outcome::Undetected,
            };
            TableRow { attack, outcome, benign_clean }
        })
        .collect()
}

/// Renders Table I in the paper's format.
pub fn render_table1(rows: &[TableRow]) -> String {
    let mut out = String::new();
    out.push_str("Atk # | Location      | Target                    | Technique | Result\n");
    out.push_str("------+---------------+---------------------------+-----------+---------\n");
    for row in rows {
        out.push_str(&format!(
            "{:>5} | {:<13} | {:<25} | {:<9} | {}\n",
            row.attack.id,
            row.attack.location.to_string(),
            row.attack.target.to_string(),
            row.attack.technique.to_string(),
            row.outcome
        ));
    }
    out
}
