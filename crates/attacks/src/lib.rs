//! # vpdift-attacks — the Wilander-Kamkar code-injection suite (Table I)
//!
//! All 18 buffer-overflow attack forms of the Wilander-Kamkar NDSS'03
//! suite in their RISC-V port, plus the harness that runs them against the
//! DIFT-enabled VP under the paper's §VI-B code-injection policy and
//! regenerates Table I. Non-applicable forms (register-passed parameters,
//! no frame pointer on RISC-V) are reproduced as N/A with their reasons.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod harness;
mod suite;

pub use harness::{
    code_injection_policy, render_table1, run_attack, run_attack_captured, table1, AttackRun,
    Outcome, TableRow, LI,
};
pub use suite::{all_attacks, layout, Attack, AttackForm, Location, Target, Technique};
