//! The Wilander-Kamkar buffer-overflow test-suite (NDSS'03), as ported to
//! RISC-V by Palmiero et al. and used in the paper's Table I.
//!
//! Every attack injects attacker bytes through the console (classified
//! low-integrity by the policy) and exploits a missing bounds check to
//! redirect control flow to a pre-defined "malicious" payload function.
//! Following the paper's §VI-B setup, the payload function is classified
//! `LI` before the test, and the instruction-fetch clearance is `HI` — so
//! a successful redirect is caught at the first fetched payload
//! instruction. Attacks the RISC-V port marks N/A (register-passed
//! parameters, no frame pointer, …) are reproduced as N/A with their
//! reasons.

use vpdift_asm::{Asm, Program, Reg};
use vpdift_firmware::rt::emit_runtime;

use Reg::*;

/// Where the overflowed buffer lives.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Location {
    /// A stack-allocated buffer in the victim's frame.
    Stack,
    /// A buffer in static storage (the WK suite's Heap/BSS/Data class).
    HeapBssData,
}

impl core::fmt::Display for Location {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Location::Stack => write!(f, "Stack"),
            Location::HeapBssData => write!(f, "Heap/BSS/Data"),
        }
    }
}

/// What the overflow corrupts.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Target {
    /// The saved return address.
    ReturnAddress,
    /// The saved frame/base pointer.
    BasePointer,
    /// A function pointer passed as a parameter.
    FuncPtrParam,
    /// A function pointer in a local/static variable.
    FuncPtrLocal,
    /// A `longjmp` buffer passed as a parameter.
    LongjmpBufParam,
    /// A local/static `longjmp` buffer.
    LongjmpBuf,
}

impl core::fmt::Display for Target {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Target::ReturnAddress => write!(f, "Return Address"),
            Target::BasePointer => write!(f, "Base Pointer"),
            Target::FuncPtrParam => write!(f, "Function Pointer (param)"),
            Target::FuncPtrLocal => write!(f, "Function Pointer (local)"),
            Target::LongjmpBufParam => write!(f, "Longjmp Buffer (param)"),
            Target::LongjmpBuf => write!(f, "Longjmp Buffer"),
        }
    }
}

/// How the target is reached.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Technique {
    /// The overflow itself runs into the target.
    Direct,
    /// The overflow corrupts a pointer; a later write through that
    /// pointer hits the target.
    Indirect,
}

impl core::fmt::Display for Technique {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Technique::Direct => write!(f, "Direct"),
            Technique::Indirect => write!(f, "Indirect"),
        }
    }
}

/// SoC constants the attacker "knows" (the platform is deterministic).
pub mod layout {
    /// Default RAM size of the VP (`vpdift_soc::map::DEFAULT_RAM_SIZE`).
    pub const RAM_SIZE: u32 = 8 * 1024 * 1024;
    /// Initial stack pointer set by the loader.
    pub const SP0: u32 = RAM_SIZE - 16;
    /// `main`'s frame (holds the parameter `jmp_buf` for attack 10).
    pub const MAIN_FRAME: u32 = SP0 - 64;
    /// The victim function's frame base.
    pub const VICTIM_FRAME: u32 = MAIN_FRAME - 96;
    /// Victim frame offsets.
    pub const OFF_BUFFER: u32 = 0;
    /// Offset of the corruptible pointer (indirect technique).
    pub const OFF_PTR: u32 = 16;
    /// Offset of the spilled parameter / local function pointer.
    pub const OFF_SLOT: u32 = 20;
    /// Offset of the local `jmp_buf`.
    pub const OFF_JMPBUF: u32 = 24;
    /// Offset of the saved return address.
    pub const OFF_RA: u32 = 92;
}

/// One row of Table I.
pub struct Attack {
    /// Attack number (1-based, matching the paper's table).
    pub id: u8,
    /// Buffer location.
    pub location: Location,
    /// Corruption target.
    pub target: Target,
    /// Attack technique.
    pub technique: Technique,
    /// The guest program and input builder; `None` for N/A rows.
    pub form: Option<AttackForm>,
    /// Why the attack is not applicable, for N/A rows.
    pub na_reason: Option<&'static str>,
}

/// Builds attacker console bytes from the assembled program (the payload
/// typically embeds program-dependent addresses).
pub type InputBuilder = Box<dyn Fn(&Program) -> Vec<u8>>;

/// An applicable attack: program plus malicious/benign input builders.
pub struct AttackForm {
    /// The vulnerable guest program.
    pub program: Program,
    /// Builds the attacker's console bytes (needs the program for the
    /// payload address).
    pub malicious_input: InputBuilder,
    /// A benign input exercising the same code path without overflow.
    pub benign_input: Vec<u8>,
}

impl core::fmt::Debug for Attack {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "Attack #{} {} / {} / {}{}",
            self.id,
            self.location,
            self.target,
            self.technique,
            if self.form.is_none() { " (N/A)" } else { "" }
        )
    }
}

/// The trigger mechanism appended after the overflow in the victim.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Trigger {
    Return,
    CallLocalPtr,
    CallSpilledParam,
    LongjmpLocal,
    LongjmpParam,
    CallStaticPtr,
}

/// Emits the shared program skeleton. The victim reads a length-prefixed
/// overflow from the console into its buffer (no bounds check — the bug),
/// optionally performs the indirect write, then fires `trigger`.
fn build_program(technique: Technique, trigger: Trigger, static_buffer: bool) -> Program {
    let mut a = Asm::new(0);
    a.entry();
    a.j("main");

    // ---- static data (Heap/BSS/Data attack surface) --------------------
    // Layout matters: the corruptible pointer sits right after the buffer
    // (reachable by overflow), the function pointer after that.
    a.align(4);
    a.label("static_buf");
    a.zero(16);
    a.label("static_ptr");
    a.word_of("static_buf"); // harmless initial pointee
    a.label("static_fptr");
    a.word_of("benign");
    a.align(4);

    // ---- main -----------------------------------------------------------
    a.label("main");
    a.addi(Sp, Sp, -64); // main frame: jmp_buf for the param variants
    if trigger == Trigger::LongjmpParam {
        a.mv(A0, Sp);
        a.call("rt_setjmp");
        a.bnez(A0, "back_ok"); // longjmp with intact buffer lands here
    }
    // Parameter for the param variants: a1 = &benign or &jmp_buf.
    match trigger {
        Trigger::CallSpilledParam => {
            a.la(A1, "benign");
        }
        Trigger::LongjmpParam => {
            a.mv(A1, Sp);
        }
        _ => {}
    }
    a.call("victim");
    a.label("back_ok");
    a.j("rt_ok");

    // ---- victim ----------------------------------------------------------
    a.label("victim");
    a.addi(Sp, Sp, -96);
    a.sw(Ra, 92, Sp);
    // Initialize the corruptible pointer with a harmless address.
    a.la(T0, "static_buf");
    a.sw(T0, 16, Sp);
    // Local slot: spilled parameter or local function pointer.
    match trigger {
        Trigger::CallSpilledParam | Trigger::LongjmpParam => {
            a.sw(A1, 20, Sp); // spill the register parameter
        }
        Trigger::CallLocalPtr => {
            a.la(T0, "benign");
            a.sw(T0, 20, Sp);
        }
        _ => {}
    }
    if trigger == Trigger::LongjmpLocal {
        a.addi(A0, Sp, 24);
        a.call("rt_setjmp");
        a.bnez(A0, "victim_back"); // intact longjmp returns here
    }

    // The bug: unbounded copy of console input.
    if static_buffer {
        a.la(A0, "static_buf");
    } else {
        a.mv(A0, Sp);
    }
    a.call("gets");

    if technique == Technique::Indirect {
        // Read the attacker's word and write it through the (corrupted)
        // pointer — stack-local or static, matching the buffer location.
        a.call("getw");
        if static_buffer {
            a.la(T0, "static_ptr");
            a.lw(T0, 0, T0);
        } else {
            a.lw(T0, 16, Sp);
        }
        a.sw(A0, 0, T0);
    }

    // Fire the trigger.
    match trigger {
        Trigger::Return => {}
        Trigger::CallLocalPtr | Trigger::CallSpilledParam => {
            a.lw(T0, 20, Sp);
            a.jalr(Ra, T0, 0);
        }
        Trigger::CallStaticPtr => {
            a.la(T0, "static_fptr");
            a.lw(T0, 0, T0);
            a.jalr(Ra, T0, 0);
        }
        Trigger::LongjmpLocal => {
            a.addi(A0, Sp, 24);
            a.li(A1, 1);
            a.call("rt_longjmp");
        }
        Trigger::LongjmpParam => {
            a.lw(A0, 20, Sp);
            a.li(A1, 1);
            a.call("rt_longjmp");
        }
    }
    a.label("victim_back");
    a.lw(Ra, 92, Sp);
    a.addi(Sp, Sp, 96);
    a.ret();

    // ---- helpers ----------------------------------------------------------
    // gets(a0 = dst): length-prefixed read from the console.
    a.label("gets");
    a.addi(Sp, Sp, -16);
    a.sw(Ra, 12, Sp);
    a.mv(S10, A0);
    a.call("rt_getc");
    a.mv(S11, A0); // count
    a.label("gets_loop");
    a.beqz(S11, "gets_done");
    a.call("rt_getc");
    a.sb(A0, 0, S10);
    a.addi(S10, S10, 1);
    a.addi(S11, S11, -1);
    a.j("gets_loop");
    a.label("gets_done");
    a.lw(Ra, 12, Sp);
    a.addi(Sp, Sp, 16);
    a.ret();

    // getw() -> a0: four console bytes, little endian.
    a.label("getw");
    a.addi(Sp, Sp, -16);
    a.sw(Ra, 12, Sp);
    a.li(S10, 0);
    a.li(S11, 0); // shift
    a.label("getw_loop");
    a.call("rt_getc");
    a.sll(A0, A0, S11);
    a.or(S10, S10, A0);
    a.addi(S11, S11, 8);
    a.li(T2, 32);
    a.blt(S11, T2, "getw_loop");
    a.mv(A0, S10);
    a.lw(Ra, 12, Sp);
    a.addi(Sp, Sp, 16);
    a.ret();

    // The benign callee.
    a.label("benign");
    a.ret();

    // The "malicious code" payload (classified LI by the harness). If the
    // DIFT engine misses the redirect, it announces itself and stops.
    a.align(4);
    a.label("payload");
    a.la(A0, "msg_pwned");
    a.call("rt_puts");
    a.ebreak();
    a.label("payload_end");

    emit_runtime(&mut a);

    a.label("msg_pwned");
    a.asciiz("PWNED\n");
    a.align(4);

    a.assemble().expect("attack program assembles")
}

fn le(v: u32) -> [u8; 4] {
    v.to_le_bytes()
}

/// `count` filler bytes then `addr` — the classic contiguous overflow.
fn direct_input(fill: u32, addr: u32) -> Vec<u8> {
    let mut input = vec![(fill + 4) as u8];
    input.extend(std::iter::repeat_n(b'A', fill as usize));
    input.extend_from_slice(&le(addr));
    input
}

/// Overflow to the pointer slot with `ptr_target`, then the word `value`
/// written through it.
fn indirect_input(ptr_target: u32, value: u32) -> Vec<u8> {
    let mut input = vec![20u8];
    input.extend(std::iter::repeat_n(b'A', 16));
    input.extend_from_slice(&le(ptr_target));
    input.extend_from_slice(&le(value));
    input
}

fn payload_addr(p: &Program) -> u32 {
    p.symbol("payload").expect("payload symbol")
}

/// A benign input for the direct forms: four in-bounds bytes (and, for
/// indirect forms, a harmless pointer write into the static buffer).
fn benign_direct() -> Vec<u8> {
    vec![4, b'o', b'k', b'!', 0]
}

fn benign_indirect() -> Vec<u8> {
    // In-bounds overflow; pointer still points at static_buf; the write
    // lands harmlessly there.
    let mut input = vec![4, b'o', b'k', b'!', 0];
    input.extend_from_slice(&le(0xDEAD_BEEF));
    input
}

/// Builds all 18 attack forms of Table I.
pub fn all_attacks() -> Vec<Attack> {
    use layout::*;
    let na = |id, location, target, technique, reason: &'static str| Attack {
        id,
        location,
        target,
        technique,
        form: None,
        na_reason: Some(reason),
    };
    let mk = |id,
              location,
              target,
              technique,
              trigger,
              static_buffer: bool,
              malicious: InputBuilder,
              benign: Vec<u8>| {
        Attack {
            id,
            location,
            target,
            technique,
            form: Some(AttackForm {
                program: build_program(technique, trigger, static_buffer),
                malicious_input: malicious,
                benign_input: benign,
            }),
            na_reason: None,
        }
    };

    vec![
        na(
            1,
            Location::Stack,
            Target::FuncPtrParam,
            Technique::Direct,
            "function-pointer parameters are passed in registers by the RISC-V \
             calling convention; there is no stack copy to overflow into",
        ),
        na(
            2,
            Location::Stack,
            Target::LongjmpBufParam,
            Technique::Direct,
            "the longjmp-buffer parameter is a register-held pointer; the buffer \
             itself is not adjacent to the overflowed parameter area",
        ),
        mk(
            3,
            Location::Stack,
            Target::ReturnAddress,
            Technique::Direct,
            Trigger::Return,
            false,
            Box::new(|p| direct_input(layout::OFF_RA, payload_addr(p))),
            benign_direct(),
        ),
        na(
            4,
            Location::Stack,
            Target::BasePointer,
            Technique::Direct,
            "the standard RISC-V ABI does not maintain a frame/base pointer",
        ),
        mk(
            5,
            Location::Stack,
            Target::FuncPtrLocal,
            Technique::Direct,
            Trigger::CallLocalPtr,
            false,
            Box::new(|p| direct_input(layout::OFF_SLOT, payload_addr(p))),
            benign_direct(),
        ),
        mk(
            6,
            Location::Stack,
            Target::LongjmpBuf,
            Technique::Direct,
            Trigger::LongjmpLocal,
            false,
            Box::new(|p| direct_input(layout::OFF_JMPBUF, payload_addr(p))),
            benign_direct(),
        ),
        mk(
            7,
            Location::HeapBssData,
            Target::FuncPtrLocal,
            Technique::Direct,
            Trigger::CallStaticPtr,
            true,
            // The overflow crosses static_buf (16) and static_ptr (4)
            // before reaching static_fptr.
            Box::new(|p| direct_input(20, payload_addr(p))),
            benign_direct(),
        ),
        na(
            8,
            Location::HeapBssData,
            Target::LongjmpBuf,
            Technique::Direct,
            "the RISC-V port keeps no longjmp buffer adjacent to overflowable \
             static data (calling-convention differences, Palmiero et al.)",
        ),
        mk(
            9,
            Location::Stack,
            Target::FuncPtrParam,
            Technique::Indirect,
            Trigger::CallSpilledParam,
            false,
            Box::new(|p| indirect_input(VICTIM_FRAME + OFF_SLOT, payload_addr(p))),
            benign_indirect(),
        ),
        mk(
            10,
            Location::Stack,
            Target::LongjmpBufParam,
            Technique::Indirect,
            Trigger::LongjmpParam,
            false,
            // The jmp_buf lives in main's frame; its ra field is word 0.
            Box::new(|p| indirect_input(MAIN_FRAME, payload_addr(p))),
            benign_indirect(),
        ),
        mk(
            11,
            Location::Stack,
            Target::ReturnAddress,
            Technique::Indirect,
            Trigger::Return,
            false,
            Box::new(|p| indirect_input(VICTIM_FRAME + OFF_RA, payload_addr(p))),
            benign_indirect(),
        ),
        na(
            12,
            Location::Stack,
            Target::BasePointer,
            Technique::Indirect,
            "no frame/base pointer in the standard RISC-V ABI",
        ),
        mk(
            13,
            Location::Stack,
            Target::FuncPtrLocal,
            Technique::Indirect,
            Trigger::CallLocalPtr,
            false,
            Box::new(|p| indirect_input(VICTIM_FRAME + OFF_SLOT, payload_addr(p))),
            benign_indirect(),
        ),
        mk(
            14,
            Location::Stack,
            Target::LongjmpBuf,
            Technique::Indirect,
            Trigger::LongjmpLocal,
            false,
            Box::new(|p| indirect_input(VICTIM_FRAME + OFF_JMPBUF, payload_addr(p))),
            benign_indirect(),
        ),
        na(
            15,
            Location::HeapBssData,
            Target::ReturnAddress,
            Technique::Indirect,
            "return addresses never reside in static memory on RISC-V",
        ),
        na(
            16,
            Location::HeapBssData,
            Target::BasePointer,
            Technique::Indirect,
            "no frame/base pointer in the standard RISC-V ABI",
        ),
        mk(
            17,
            Location::HeapBssData,
            Target::FuncPtrLocal,
            Technique::Indirect,
            Trigger::CallStaticPtr,
            true,
            Box::new(|p| {
                let fptr = p.symbol("static_fptr").expect("static_fptr symbol");
                indirect_input(fptr, payload_addr(p))
            }),
            benign_indirect(),
        ),
        na(
            18,
            Location::HeapBssData,
            Target::LongjmpBuf,
            Technique::Indirect,
            "the RISC-V port keeps no longjmp buffer in overflow-reachable \
             static data",
        ),
    ]
}
