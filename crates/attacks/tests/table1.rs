//! Table I as executable assertions: every applicable attack is detected
//! at instruction fetch; every benign twin runs clean; N/A rows match the
//! paper exactly.

use vpdift_attacks::{all_attacks, table1, Outcome};

/// The paper's Table I "Result" column, by attack number (`true` =
/// Detected, `false` = N/A).
const PAPER_RESULTS: [(u8, bool); 18] = [
    (1, false),
    (2, false),
    (3, true),
    (4, false),
    (5, true),
    (6, true),
    (7, true),
    (8, false),
    (9, true),
    (10, true),
    (11, true),
    (12, false),
    (13, true),
    (14, true),
    (15, false),
    (16, false),
    (17, true),
    (18, false),
];

#[test]
fn suite_has_all_18_forms() {
    let attacks = all_attacks();
    assert_eq!(attacks.len(), 18);
    for (i, a) in attacks.iter().enumerate() {
        assert_eq!(a.id as usize, i + 1);
        assert_eq!(a.form.is_some(), PAPER_RESULTS[i].1, "{a:?} applicability");
        if a.form.is_none() {
            assert!(a.na_reason.is_some(), "{a:?} needs an N/A reason");
        }
    }
}

#[test]
fn table1_matches_the_paper() {
    let rows = table1();
    assert_eq!(rows.len(), 18);
    for (row, (id, detected)) in rows.iter().zip(PAPER_RESULTS) {
        assert_eq!(row.attack.id, id);
        let expected = if detected { Outcome::Detected } else { Outcome::NotApplicable };
        assert_eq!(row.outcome, expected, "{:?}", row.attack);
        assert!(row.benign_clean, "{:?} benign twin false-positive", row.attack);
    }
}
