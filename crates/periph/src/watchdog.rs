//! Memory-mapped watchdog timer — the SoC's liveness backstop.
//!
//! Firmware arms the watchdog with a timeout and must kick it before the
//! deadline; if simulated time passes the deadline the dog "bites" and the
//! SoC terminates the run with `SocExit::WatchdogTimeout`. This turns
//! otherwise-unclassifiable hangs (spin loops on lost CAN frames, wedged
//! peripherals under fault injection) into a precise, reportable outcome —
//! the graceful-degradation half of the fault-injection story.
//!
//! The host side (test harnesses, the fault-campaign runner) can also arm
//! the dog directly via [`Watchdog::arm`] without firmware cooperation,
//! which is how campaigns bound the wall-clock cost of a hang.
//!
//! Expiry is checked by the SoC at quantum granularity (after each quantum
//! and each idle skip), so a timeout is observed within one quantum of the
//! deadline rather than cycle-exactly — the usual LT trade-off.

use vpdift_core::Taint;
use vpdift_kernel::SimTime;
use vpdift_sync::{shared, Shared};
use vpdift_tlm::{GenericPayload, TlmCommand, TlmResponse, TlmTarget};

use crate::mmio::{get_word, put_word};

/// Register map (word-aligned offsets).
pub mod regs {
    /// Read/write: timeout in microseconds (staged; applied on arm/kick).
    pub const TIMEOUT: u32 = 0x0;
    /// Read/write: bit 0 = enable. Writing 1 (re)arms and reloads the
    /// deadline; writing 0 disarms.
    pub const CTRL: u32 = 0x4;
    /// Write (any value): kick — reload the deadline from `TIMEOUT`.
    pub const KICK: u32 = 0x8;
    /// Read: bit 0 = expired (sticky until re-armed).
    pub const STATUS: u32 = 0xC;
}

/// The watchdog model.
#[derive(Debug)]
pub struct Watchdog {
    timeout: SimTime,
    armed: bool,
    deadline: SimTime,
    expired: bool,
    now: SimTime,
    kicks: u64,
}

impl Default for Watchdog {
    fn default() -> Self {
        Self::new()
    }
}

impl Watchdog {
    /// Creates a disarmed watchdog.
    pub fn new() -> Self {
        Watchdog {
            timeout: SimTime::ZERO,
            armed: false,
            deadline: SimTime::MAX,
            expired: false,
            now: SimTime::ZERO,
            kicks: 0,
        }
    }

    /// Wraps into the shared handle used by the SoC.
    pub fn into_shared(self) -> Shared<Watchdog> {
        shared(self)
    }

    /// Arms (or re-arms) with `timeout` from the current simulated time.
    /// Clears a sticky expiry.
    pub fn arm(&mut self, timeout: SimTime) {
        self.timeout = timeout;
        self.armed = true;
        self.expired = false;
        self.deadline = self.now.saturating_add(timeout);
    }

    /// Disarms; the deadline is withdrawn and expiry stays as-is.
    pub fn disarm(&mut self) {
        self.armed = false;
        self.deadline = SimTime::MAX;
    }

    /// Kicks: reloads the deadline from the configured timeout. A no-op
    /// when disarmed.
    pub fn kick(&mut self) {
        if self.armed {
            self.deadline = self.now.saturating_add(self.timeout);
            self.kicks += 1;
        }
    }

    /// `true` once the deadline has passed while armed (sticky).
    pub fn expired(&self) -> bool {
        self.expired
    }

    /// The pending deadline, or `None` when disarmed/expired — fed into
    /// the SoC's next-event computation so an idle (WFI) platform still
    /// advances time far enough for the dog to bite.
    pub fn deadline(&self) -> Option<SimTime> {
        (self.armed && !self.expired).then_some(self.deadline)
    }

    /// Number of successful kicks over the dog's lifetime.
    pub fn kicks(&self) -> u64 {
        self.kicks
    }

    /// Advances the watchdog's view of simulated time, latching expiry
    /// when the deadline has passed. Called by the SoC once per quantum.
    pub fn set_now(&mut self, now: SimTime) {
        self.now = now;
        if self.armed && !self.expired && now >= self.deadline {
            self.expired = true;
        }
    }
}

impl TlmTarget for Watchdog {
    fn transport(&mut self, p: &mut GenericPayload, _delay: &mut SimTime) {
        let addr = p.address();
        match p.command() {
            TlmCommand::Write => match addr {
                regs::TIMEOUT => {
                    self.timeout = SimTime::from_us(get_word(p).value() as u64);
                    p.set_response(TlmResponse::Ok);
                }
                regs::CTRL => {
                    if get_word(p).value() & 1 != 0 {
                        self.arm(self.timeout);
                    } else {
                        self.disarm();
                    }
                    p.set_response(TlmResponse::Ok);
                }
                regs::KICK => {
                    self.kick();
                    p.set_response(TlmResponse::Ok);
                }
                _ => p.set_response(TlmResponse::CommandError),
            },
            TlmCommand::Read => match addr {
                regs::TIMEOUT => {
                    put_word(p, Taint::untainted(self.timeout.as_us() as u32));
                    p.set_response(TlmResponse::Ok);
                }
                regs::CTRL => {
                    put_word(p, Taint::untainted(self.armed as u32));
                    p.set_response(TlmResponse::Ok);
                }
                regs::STATUS => {
                    put_word(p, Taint::untainted(self.expired as u32));
                    p.set_response(TlmResponse::Ok);
                }
                _ => p.set_response(TlmResponse::CommandError),
            },
            TlmCommand::Ignore => p.set_response(TlmResponse::Ok),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wr(w: &mut Watchdog, reg: u32, v: u32) {
        let mut p = GenericPayload::write_word(reg, Taint::untainted(v));
        w.transport(&mut p, &mut SimTime::ZERO.clone());
        assert!(p.is_ok());
    }

    fn rd(w: &mut Watchdog, reg: u32) -> u32 {
        let mut p = GenericPayload::read(reg, 4);
        w.transport(&mut p, &mut SimTime::ZERO.clone());
        assert!(p.is_ok());
        p.data_word::<u32>().value()
    }

    #[test]
    fn expires_only_when_armed_and_deadline_passes() {
        let mut w = Watchdog::new();
        w.set_now(SimTime::from_ms(100));
        assert!(!w.expired(), "disarmed dog never bites");
        w.arm(SimTime::from_ms(10));
        assert_eq!(w.deadline(), Some(SimTime::from_ms(110)));
        w.set_now(SimTime::from_ms(109));
        assert!(!w.expired());
        w.set_now(SimTime::from_ms(110));
        assert!(w.expired());
        assert_eq!(w.deadline(), None, "expired dog withdraws its deadline");
    }

    #[test]
    fn kick_reloads_the_deadline() {
        let mut w = Watchdog::new();
        w.arm(SimTime::from_ms(10));
        w.set_now(SimTime::from_ms(8));
        w.kick();
        assert_eq!(w.deadline(), Some(SimTime::from_ms(18)));
        w.set_now(SimTime::from_ms(15));
        assert!(!w.expired());
        assert_eq!(w.kicks(), 1);
        w.disarm();
        w.kick();
        assert_eq!(w.kicks(), 1, "kick is a no-op when disarmed");
        w.set_now(SimTime::from_s(10));
        assert!(!w.expired());
    }

    #[test]
    fn mmio_interface_arms_kicks_and_reports() {
        let mut w = Watchdog::new();
        wr(&mut w, regs::TIMEOUT, 500);
        assert_eq!(rd(&mut w, regs::TIMEOUT), 500);
        wr(&mut w, regs::CTRL, 1);
        assert_eq!(rd(&mut w, regs::CTRL), 1);
        assert_eq!(w.deadline(), Some(SimTime::from_us(500)));
        w.set_now(SimTime::from_us(400));
        wr(&mut w, regs::KICK, 0);
        assert_eq!(w.deadline(), Some(SimTime::from_us(900)));
        w.set_now(SimTime::from_us(900));
        assert_eq!(rd(&mut w, regs::STATUS), 1);
        // Re-arming clears the sticky expiry.
        wr(&mut w, regs::CTRL, 1);
        assert_eq!(rd(&mut w, regs::STATUS), 0);
        wr(&mut w, regs::CTRL, 0);
        assert_eq!(rd(&mut w, regs::CTRL), 0);
    }

    #[test]
    fn unknown_register_is_a_command_error() {
        let mut w = Watchdog::new();
        let mut p = GenericPayload::write_word(0x40, Taint::untainted(1));
        w.transport(&mut p, &mut SimTime::ZERO.clone());
        assert_eq!(p.response(), TlmResponse::CommandError);
    }
}
