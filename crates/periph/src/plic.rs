//! A simplified platform-level interrupt controller.
//!
//! Peripherals raise numbered interrupt sources; software enables sources,
//! claims the highest-priority pending one, and completes it. The `eip()`
//! level feeds the CPU's machine-external-interrupt pending bit.

use vpdift_core::Taint;
use vpdift_kernel::SimTime;
use vpdift_sync::{shared, Shared};
use vpdift_tlm::{GenericPayload, TlmCommand, TlmResponse, TlmTarget};

use crate::mmio::{get_word, put_word};

/// Register map (word-aligned offsets).
pub mod regs {
    /// Read: pending source bitmap.
    pub const PENDING: u32 = 0x0;
    /// Read/write: enabled source bitmap.
    pub const ENABLE: u32 = 0x4;
    /// Read: claim (returns highest pending&enabled source id, clears its
    /// pending bit). Write: complete (no-op in this simplified model).
    pub const CLAIM: u32 = 0x8;
}

/// The interrupt controller. Sources are numbered 1..=31; source 0 means
/// "none".
#[derive(Debug, Default)]
pub struct Plic {
    pending: u32,
    enabled: u32,
}

impl Plic {
    /// Creates a controller with everything masked.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps into the shared handle used by the SoC and by peripherals'
    /// [`IrqLine`]s.
    pub fn into_shared(self) -> Shared<Plic> {
        shared(self)
    }

    /// Raises interrupt source `id` (1..=31).
    ///
    /// # Panics
    /// Panics if `id` is 0 or ≥ 32.
    pub fn raise(&mut self, id: u32) {
        assert!((1..32).contains(&id), "PLIC source id out of range");
        self.pending |= 1 << id;
    }

    /// Clears a pending source (host/test use; software uses claim).
    pub fn clear(&mut self, id: u32) {
        self.pending &= !(1 << id);
    }

    /// `true` while any enabled source is pending — wired to the CPU's MEIP.
    pub fn eip(&self) -> bool {
        self.pending & self.enabled != 0
    }

    /// The pending bitmap.
    pub fn pending(&self) -> u32 {
        self.pending
    }

    /// Claims the lowest-numbered pending & enabled source.
    pub fn claim(&mut self) -> u32 {
        let ready = self.pending & self.enabled;
        if ready == 0 {
            return 0;
        }
        let id = ready.trailing_zeros();
        self.pending &= !(1 << id);
        id
    }
}

impl TlmTarget for Plic {
    fn transport(&mut self, p: &mut GenericPayload, _delay: &mut SimTime) {
        match (p.command(), p.address()) {
            (TlmCommand::Read, regs::PENDING) => {
                put_word(p, Taint::untainted(self.pending));
                p.set_response(TlmResponse::Ok);
            }
            (TlmCommand::Read, regs::ENABLE) => {
                put_word(p, Taint::untainted(self.enabled));
                p.set_response(TlmResponse::Ok);
            }
            (TlmCommand::Write, regs::ENABLE) => {
                self.enabled = get_word(p).value();
                p.set_response(TlmResponse::Ok);
            }
            (TlmCommand::Read, regs::CLAIM) => {
                let id = self.claim();
                put_word(p, Taint::untainted(id));
                p.set_response(TlmResponse::Ok);
            }
            (TlmCommand::Write, regs::CLAIM) => {
                // Completion: level-triggered sources would re-raise here.
                p.set_response(TlmResponse::Ok);
            }
            _ => p.set_response(TlmResponse::CommandError),
        }
    }
}

/// A handle a peripheral uses to raise its interrupt line.
#[derive(Clone)]
pub struct IrqLine {
    plic: Shared<Plic>,
    id: u32,
}

impl core::fmt::Debug for IrqLine {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "IrqLine(id={})", self.id)
    }
}

impl IrqLine {
    /// Creates the line for source `id` on `plic`.
    pub fn new(plic: Shared<Plic>, id: u32) -> Self {
        IrqLine { plic, id }
    }

    /// Raises the interrupt.
    pub fn raise(&self) {
        self.plic.borrow_mut().raise(self.id);
    }

    /// The source id.
    pub fn id(&self) -> u32 {
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raise_enable_claim_cycle() {
        let mut plic = Plic::new();
        plic.raise(2);
        assert!(!plic.eip(), "masked source does not assert eip");
        plic.enabled = 1 << 2;
        assert!(plic.eip());
        assert_eq!(plic.claim(), 2);
        assert!(!plic.eip());
        assert_eq!(plic.claim(), 0);
    }

    #[test]
    fn lowest_source_claims_first() {
        let mut plic = Plic::new();
        plic.enabled = u32::MAX;
        plic.raise(7);
        plic.raise(3);
        assert_eq!(plic.claim(), 3);
        assert_eq!(plic.claim(), 7);
    }

    #[test]
    fn mmio_interface() {
        let mut plic = Plic::new();
        let mut d = SimTime::ZERO;

        let mut w = GenericPayload::write_word(regs::ENABLE, Taint::untainted(0b100u32));
        plic.transport(&mut w, &mut d);
        assert!(w.is_ok());

        plic.raise(2);
        let mut r = GenericPayload::read(regs::PENDING, 4);
        plic.transport(&mut r, &mut d);
        assert_eq!(r.data_word::<u32>().value(), 0b100);

        let mut c = GenericPayload::read(regs::CLAIM, 4);
        plic.transport(&mut c, &mut d);
        assert_eq!(c.data_word::<u32>().value(), 2);

        let mut done = GenericPayload::write_word(regs::CLAIM, Taint::untainted(2u32));
        plic.transport(&mut done, &mut d);
        assert!(done.is_ok());
    }

    #[test]
    fn irq_line_raises_through_shared_handle() {
        let plic = Plic::new().into_shared();
        let line = IrqLine::new(plic.clone(), 5);
        assert_eq!(line.id(), 5);
        line.raise();
        assert_eq!(plic.borrow().pending(), 1 << 5);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn source_zero_rejected() {
        Plic::new().raise(0);
    }
}
