//! # vpdift-periph — the SoC's hardware peripherals
//!
//! Every peripheral of the modeled embedded system, each a TLM target with
//! a tagged data lane so information flow is tracked *through* the hardware
//! and back into software (the paper's "fine-grained HW/SW interactions"):
//!
//! * [`Ram`] — main memory with per-byte tags (elided in plain mode),
//! * [`Uart`] — clearance-checked output interface,
//! * [`Terminal`] — attacker-facing console input, classified at entry,
//! * [`Sensor`] — the periodic data source of the paper's Fig. 4,
//! * [`CanController`]/[`CanChannel`] — the immobilizer's bus link,
//! * [`AesEngine`] — AES-128 crypto with policy-granted declassification
//!   (built on the from-scratch FIPS-197 [`aes_core`]),
//! * [`Dma`] — tag-preserving direct memory access,
//! * [`Clint`] and [`Plic`] — timer and interrupt infrastructure.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod aes;
pub mod aes_core;
pub mod can;
pub mod clint;
pub mod dma;
pub mod mmio;
pub mod plic;
pub mod ram;
pub mod sensor;
pub mod taintdbg;
pub mod terminal;
pub mod uart;
pub mod watchdog;

pub use aes::AesEngine;
pub use aes_core::Aes128;
pub use can::{CanChannel, CanController, CanFrame, CanHostEndpoint, CanLineFault, SharedCanLine};
pub use clint::Clint;
pub use dma::Dma;
pub use plic::{IrqLine, Plic};
pub use ram::Ram;
pub use sensor::Sensor;
pub use taintdbg::TaintDebug;
pub use terminal::Terminal;
pub use uart::Uart;
pub use watchdog::Watchdog;
