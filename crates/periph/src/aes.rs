//! The memory-mapped AES-128 engine with declassification.
//!
//! The case-study policy grants *only* this peripheral the right to
//! declassify (paper §IV-A): ciphertext computed from a secret key is
//! re-tagged to the configured output class — by default `(LC,LI)` — so
//! encrypted responses may leave on the CAN bus while the key itself never
//! can.

use vpdift_core::{DeclassifyCap, Tag, Taint};
use vpdift_kernel::SimTime;
use vpdift_sync::{shared, Shared};
use vpdift_tlm::{GenericPayload, TlmCommand, TlmResponse, TlmTarget};

use crate::aes_core::Aes128;
use crate::mmio::{get_word, put_word};

/// Register map (offsets).
pub mod regs {
    /// Write window: the 16-byte key.
    pub const KEY: u32 = 0x00;
    /// Write window: the 16-byte input block.
    pub const DATA_IN: u32 = 0x10;
    /// Read window: the 16-byte result block.
    pub const DATA_OUT: u32 = 0x20;
    /// Write: 1 = encrypt, 2 = decrypt.
    pub const CTRL: u32 = 0x30;
    /// Read: bit 0 = done.
    pub const STATUS: u32 = 0x34;
}

/// `CTRL` command: encrypt the input block.
pub const CTRL_ENCRYPT: u32 = 1;
/// `CTRL` command: decrypt the input block.
pub const CTRL_DECRYPT: u32 = 2;

/// The AES-128 peripheral.
#[derive(Debug)]
pub struct AesEngine {
    key: [Taint<u8>; 16],
    input: [Taint<u8>; 16],
    output: [Taint<u8>; 16],
    done: bool,
    declassify: Option<DeclassifyCap>,
    output_tag: Tag,
    operations: u64,
    obs: vpdift_obs::ObsHandle,
}

impl AesEngine {
    /// Creates the engine. With `declassify` present, every result block is
    /// re-tagged to `output_tag`; without it, results keep the LUB of the
    /// key and input tags (and typically cannot leave the system).
    pub fn new(declassify: Option<DeclassifyCap>, output_tag: Tag) -> Self {
        AesEngine {
            key: [Taint::untainted(0); 16],
            input: [Taint::untainted(0); 16],
            output: [Taint::untainted(0); 16],
            done: false,
            declassify,
            output_tag,
            operations: 0,
            obs: vpdift_obs::ObsHandle::default(),
        }
    }

    /// Attaches an observability sink; declassifications are reported to
    /// it.
    pub fn set_obs(&mut self, obs: vpdift_obs::SharedObs) {
        self.obs.attach(obs);
    }

    /// Wraps into the shared handle used by the SoC.
    pub fn into_shared(self) -> Shared<AesEngine> {
        shared(self)
    }

    /// Completed operations count.
    pub fn operations(&self) -> u64 {
        self.operations
    }

    fn execute(&mut self, cmd: u32) -> bool {
        let mut key = [0u8; 16];
        let mut input = [0u8; 16];
        let mut data_tag = Tag::EMPTY;
        for i in 0..16 {
            key[i] = self.key[i].value();
            input[i] = self.input[i].value();
            data_tag = data_tag.lub(self.key[i].tag()).lub(self.input[i].tag());
        }
        let aes = Aes128::new(&key);
        let result = match cmd {
            CTRL_ENCRYPT => aes.encrypt_block(&input),
            CTRL_DECRYPT => aes.decrypt_block(&input),
            _ => return false,
        };
        for (o, &b) in self.output.iter_mut().zip(&result) {
            let tagged = Taint::new(b, data_tag);
            *o = match &self.declassify {
                // Trusted declassification: ciphertext becomes (LC,LI).
                Some(cap) => cap.reclassify(tagged, self.output_tag),
                None => tagged,
            };
        }
        if self.declassify.is_some() && self.obs.is_attached() {
            self.obs.emit(&vpdift_obs::ObsEvent::Declassify {
                component: "aes".into(),
                before: data_tag,
                after: self.output[0].tag(),
            });
        }
        self.done = true;
        self.operations += 1;
        true
    }
}

fn window_write(buf: &mut [Taint<u8>; 16], offset: usize, p: &mut GenericPayload) {
    if offset + p.len() > 16 {
        p.set_response(TlmResponse::BurstError);
        return;
    }
    for (i, b) in p.data().iter().enumerate() {
        buf[offset + i] = *b;
    }
    p.set_response(TlmResponse::Ok);
}

fn window_read(buf: &[Taint<u8>; 16], offset: usize, p: &mut GenericPayload) {
    if offset + p.len() > 16 {
        p.set_response(TlmResponse::BurstError);
        return;
    }
    for (i, b) in p.data_mut().iter_mut().enumerate() {
        *b = buf[offset + i];
    }
    p.set_response(TlmResponse::Ok);
}

impl TlmTarget for AesEngine {
    fn transport(&mut self, p: &mut GenericPayload, _delay: &mut SimTime) {
        let addr = p.address();
        match p.command() {
            TlmCommand::Write => match addr {
                a if (regs::KEY..regs::KEY + 16).contains(&a) => {
                    self.done = false;
                    let mut key = self.key;
                    window_write(&mut key, (a - regs::KEY) as usize, p);
                    self.key = key;
                }
                a if (regs::DATA_IN..regs::DATA_IN + 16).contains(&a) => {
                    self.done = false;
                    let mut input = self.input;
                    window_write(&mut input, (a - regs::DATA_IN) as usize, p);
                    self.input = input;
                }
                regs::CTRL => {
                    let cmd = get_word(p).value();
                    if self.execute(cmd) {
                        p.set_response(TlmResponse::Ok);
                    } else {
                        p.set_response(TlmResponse::CommandError);
                    }
                }
                _ => p.set_response(TlmResponse::CommandError),
            },
            TlmCommand::Read => match addr {
                a if (regs::DATA_OUT..regs::DATA_OUT + 16).contains(&a) => {
                    window_read(&self.output, (a - regs::DATA_OUT) as usize, p);
                }
                regs::STATUS => {
                    put_word(p, Taint::untainted(self.done as u32));
                    p.set_response(TlmResponse::Ok);
                }
                _ => p.set_response(TlmResponse::CommandError),
            },
            TlmCommand::Ignore => p.set_response(TlmResponse::Ok),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdift_core::SecurityPolicy;

    const SECRET: Tag = Tag::from_bits(0b01);
    const UNTRUSTED: Tag = Tag::from_bits(0b10);

    fn write_block(e: &mut AesEngine, base: u32, bytes: &[u8; 16], tag: Tag) {
        let lanes: Vec<Taint<u8>> = bytes.iter().map(|&b| Taint::new(b, tag)).collect();
        let mut p = GenericPayload::write(base, &lanes);
        e.transport(&mut p, &mut SimTime::ZERO.clone());
        assert!(p.is_ok());
    }

    fn read_block(e: &mut AesEngine, base: u32) -> ([u8; 16], Tag) {
        let mut p = GenericPayload::read(base, 16);
        e.transport(&mut p, &mut SimTime::ZERO.clone());
        assert!(p.is_ok());
        let mut out = [0u8; 16];
        let mut tag = Tag::EMPTY;
        for (i, b) in p.data().iter().enumerate() {
            out[i] = b.value();
            tag = tag.lub(b.tag());
        }
        (out, tag)
    }

    fn start(e: &mut AesEngine, cmd: u32) {
        let mut p = GenericPayload::write_word(regs::CTRL, Taint::untainted(cmd));
        e.transport(&mut p, &mut SimTime::ZERO.clone());
        assert!(p.is_ok());
    }

    fn hex(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for i in 0..16 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    #[test]
    fn encrypt_matches_fips_and_declassifies() {
        let policy = SecurityPolicy::builder("t").allow_declassify("aes").build();
        let cap = policy.grant_declassify("aes").unwrap();
        let mut e = AesEngine::new(Some(cap), UNTRUSTED);

        write_block(&mut e, regs::KEY, &hex("000102030405060708090a0b0c0d0e0f"), SECRET);
        write_block(&mut e, regs::DATA_IN, &hex("00112233445566778899aabbccddeeff"), UNTRUSTED);
        start(&mut e, CTRL_ENCRYPT);

        let (ct, tag) = read_block(&mut e, regs::DATA_OUT);
        assert_eq!(ct, hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
        assert_eq!(tag, UNTRUSTED, "ciphertext declassified to the output class");
        assert_eq!(e.operations(), 1);
    }

    #[test]
    fn without_grant_ciphertext_keeps_secret_tag() {
        let mut e = AesEngine::new(None, Tag::EMPTY);
        write_block(&mut e, regs::KEY, &hex("000102030405060708090a0b0c0d0e0f"), SECRET);
        write_block(&mut e, regs::DATA_IN, &hex("00112233445566778899aabbccddeeff"), UNTRUSTED);
        start(&mut e, CTRL_ENCRYPT);
        let (_, tag) = read_block(&mut e, regs::DATA_OUT);
        assert_eq!(tag, SECRET.lub(UNTRUSTED), "no declassification without the grant");
    }

    #[test]
    fn decrypt_round_trips() {
        let mut e = AesEngine::new(None, Tag::EMPTY);
        let pt = hex("00112233445566778899aabbccddeeff");
        write_block(&mut e, regs::KEY, &hex("000102030405060708090a0b0c0d0e0f"), Tag::EMPTY);
        write_block(&mut e, regs::DATA_IN, &pt, Tag::EMPTY);
        start(&mut e, CTRL_ENCRYPT);
        let (ct, _) = read_block(&mut e, regs::DATA_OUT);
        write_block(&mut e, regs::DATA_IN, &ct, Tag::EMPTY);
        start(&mut e, CTRL_DECRYPT);
        let (back, _) = read_block(&mut e, regs::DATA_OUT);
        assert_eq!(back, pt);
    }

    #[test]
    fn status_tracks_done() {
        let mut e = AesEngine::new(None, Tag::EMPTY);
        let mut p = GenericPayload::read(regs::STATUS, 4);
        e.transport(&mut p, &mut SimTime::ZERO.clone());
        assert_eq!(p.data_word::<u32>().value(), 0);
        start(&mut e, CTRL_ENCRYPT);
        let mut p = GenericPayload::read(regs::STATUS, 4);
        e.transport(&mut p, &mut SimTime::ZERO.clone());
        assert_eq!(p.data_word::<u32>().value(), 1);
        // Writing a new key clears done.
        write_block(&mut e, regs::KEY, &[0u8; 16], Tag::EMPTY);
        let mut p = GenericPayload::read(regs::STATUS, 4);
        e.transport(&mut p, &mut SimTime::ZERO.clone());
        assert_eq!(p.data_word::<u32>().value(), 0);
    }

    #[test]
    fn invalid_ctrl_command_rejected() {
        let mut e = AesEngine::new(None, Tag::EMPTY);
        let mut p = GenericPayload::write_word(regs::CTRL, Taint::untainted(9u32));
        e.transport(&mut p, &mut SimTime::ZERO.clone());
        assert_eq!(p.response(), TlmResponse::CommandError);
    }
}
