//! Taint-introspection peripheral — a *development aid* for the VP
//! use-case the paper advertises (early development and validation of
//! security policies).
//!
//! Firmware under test can ask the platform "what is the tag of this
//! byte?" and assert expectations about its own classification state,
//! turning policy validation into guest-side unit tests. The peripheral is
//! trusted hardware (threat model §IV-B); it *reads* tags but cannot
//! change them, and the tag values it returns are public data (the
//! *existence* of a classification is not itself classified in this
//! model — do not map this peripheral in production-profile platforms).

use vpdift_core::{SharedEngine, Tag, Taint, Violation, ViolationKind};
use vpdift_kernel::SimTime;
use vpdift_sync::{shared, Shared};
use vpdift_tlm::{GenericPayload, TlmCommand, TlmResponse, TlmTarget};

use crate::mmio::{get_word, put_word};
use crate::ram::Ram;

/// Register map (word-aligned offsets).
pub mod regs {
    /// Read/write: the RAM address under inspection.
    pub const ADDR: u32 = 0x0;
    /// Read: tag bits of the byte at `ADDR`.
    pub const TAG: u32 = 0x4;
    /// Write: assert the byte at `ADDR` carries *exactly* this tag; a
    /// mismatch records a custom DIFT violation.
    pub const ASSERT_TAG: u32 = 0x8;
    /// Read: number of failed assertions so far.
    pub const FAILED: u32 = 0xC;
}

/// The introspection peripheral.
#[derive(Debug)]
pub struct TaintDebug {
    ram: Shared<Ram>,
    engine: SharedEngine,
    addr: u32,
    failed: u32,
}

impl TaintDebug {
    /// Creates the peripheral over the platform RAM.
    pub fn new(ram: Shared<Ram>, engine: SharedEngine) -> Self {
        TaintDebug { ram, engine, addr: 0, failed: 0 }
    }

    /// Wraps into the shared handle used by the SoC.
    pub fn into_shared(self) -> Shared<TaintDebug> {
        shared(self)
    }

    /// Failed guest assertions so far.
    pub fn failed(&self) -> u32 {
        self.failed
    }

    fn tag_at(&self, addr: u32) -> Option<Tag> {
        self.ram.borrow().byte_at(addr).map(|(_, t)| t)
    }
}

impl TlmTarget for TaintDebug {
    fn transport(&mut self, p: &mut GenericPayload, _delay: &mut SimTime) {
        match (p.command(), p.address()) {
            (TlmCommand::Write, regs::ADDR) => {
                self.addr = get_word(p).value();
                p.set_response(TlmResponse::Ok);
            }
            (TlmCommand::Read, regs::ADDR) => {
                put_word(p, Taint::untainted(self.addr));
                p.set_response(TlmResponse::Ok);
            }
            (TlmCommand::Read, regs::TAG) => match self.tag_at(self.addr) {
                Some(tag) => {
                    put_word(p, Taint::untainted(tag.bits()));
                    p.set_response(TlmResponse::Ok);
                }
                None => p.set_response(TlmResponse::AddressError),
            },
            (TlmCommand::Write, regs::ASSERT_TAG) => {
                let expected = Tag::from_bits(get_word(p).value());
                match self.tag_at(self.addr) {
                    Some(actual) if actual == expected => p.set_response(TlmResponse::Ok),
                    Some(actual) => {
                        self.failed += 1;
                        let v = Violation::new(
                            ViolationKind::Custom { what: "guest taint assertion".into() },
                            actual,
                            expected,
                        )
                        .with_context(format!("taintdbg assert at {:#010x}", self.addr));
                        match self.engine.borrow_mut().record(v) {
                            Ok(()) => p.set_response(TlmResponse::Ok),
                            Err(v) => p.set_violation(v),
                        }
                    }
                    None => p.set_response(TlmResponse::AddressError),
                }
            }
            (TlmCommand::Read, regs::FAILED) => {
                put_word(p, Taint::untainted(self.failed));
                p.set_response(TlmResponse::Ok);
            }
            _ => p.set_response(TlmResponse::CommandError),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdift_core::{DiftEngine, EnforceMode, SecurityPolicy};

    fn setup(mode: EnforceMode) -> (TaintDebug, Shared<Ram>) {
        let ram = Ram::new(256, true).into_shared();
        let engine = DiftEngine::with_mode(SecurityPolicy::permissive(), mode).into_shared();
        (TaintDebug::new(ram.clone(), engine), ram)
    }

    fn wr(d: &mut TaintDebug, reg: u32, v: u32) -> GenericPayload {
        let mut p = GenericPayload::write_word(reg, Taint::untainted(v));
        d.transport(&mut p, &mut SimTime::ZERO.clone());
        p
    }

    fn rd(d: &mut TaintDebug, reg: u32) -> u32 {
        let mut p = GenericPayload::read(reg, 4);
        d.transport(&mut p, &mut SimTime::ZERO.clone());
        assert!(p.is_ok());
        p.data_word::<u32>().value()
    }

    #[test]
    fn reads_tags_of_ram_bytes() {
        let (mut d, ram) = setup(EnforceMode::Enforce);
        ram.borrow_mut().classify(0x10, 1, Tag::from_bits(0b101));
        wr(&mut d, regs::ADDR, 0x10);
        assert_eq!(rd(&mut d, regs::TAG), 0b101);
        assert_eq!(rd(&mut d, regs::ADDR), 0x10);
        wr(&mut d, regs::ADDR, 0x11);
        assert_eq!(rd(&mut d, regs::TAG), 0);
    }

    #[test]
    fn assertions_pass_and_fail() {
        let (mut d, ram) = setup(EnforceMode::Record);
        ram.borrow_mut().classify(0x20, 1, Tag::from_bits(0b1));
        wr(&mut d, regs::ADDR, 0x20);
        assert!(wr(&mut d, regs::ASSERT_TAG, 0b1).is_ok());
        assert_eq!(d.failed(), 0);
        // Wrong expectation: recorded, counted.
        assert!(wr(&mut d, regs::ASSERT_TAG, 0b10).is_ok());
        assert_eq!(d.failed(), 1);
        assert_eq!(rd(&mut d, regs::FAILED), 1);
        assert_eq!(d.engine.borrow().violations().len(), 1);
    }

    #[test]
    fn enforce_mode_propagates_assertion_failure() {
        let (mut d, _ram) = setup(EnforceMode::Enforce);
        wr(&mut d, regs::ADDR, 0x30);
        let mut p = wr(&mut d, regs::ASSERT_TAG, 0xFF);
        let v = p.take_violation().expect("violation attached");
        assert!(matches!(v.kind, ViolationKind::Custom { .. }));
        assert!(v.context.contains("0x00000030"));
    }

    #[test]
    fn out_of_range_address_errors() {
        let (mut d, _ram) = setup(EnforceMode::Enforce);
        wr(&mut d, regs::ADDR, 0x1_0000);
        let mut p = GenericPayload::read(regs::TAG, 4);
        d.transport(&mut p, &mut SimTime::ZERO.clone());
        assert_eq!(p.response(), TlmResponse::AddressError);
    }
}
