//! Main memory with per-byte security tags.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use vpdift_core::{SharedCensus, Tag, Taint};
use vpdift_kernel::SimTime;
use vpdift_sync::{shared, Shared};
use vpdift_tlm::{GenericPayload, TlmCommand, TlmResponse, TlmTarget};

/// Byte-addressable RAM. Tag storage is only materialised when the VP runs
/// in tainted mode (`tracking = true`), so the plain VP pays neither memory
/// nor bookkeeping cost — mirroring the paper's VP/VP+ split.
///
/// The CPU reaches RAM through the fast accessors below (a DMI-style
/// shortcut, as the real RISC-V VP does); DMA and other initiators go
/// through the [`TlmTarget`] implementation.
#[derive(Debug, Clone)]
pub struct Ram {
    data: Vec<u8>,
    tags: Vec<Tag>,
    tracking: bool,
    /// Mutation epoch: bumped on every change that bypasses the CPU's
    /// store path (image loads, classification, DMA/TLM writes, injected
    /// bit flips), so block-caching execution engines know to flush.
    /// Shared as `Arc<AtomicU64>` so the SoC bus can poll it without
    /// borrowing the RAM every step, from whichever thread owns the VP.
    epoch: Arc<AtomicU64>,
    /// Live-tag census to arm when a non-empty tag enters RAM from
    /// outside the CPU (classification, tagged DMA data, tag-bit flips).
    census: Option<SharedCensus>,
}

impl Ram {
    /// Creates zeroed RAM of `size` bytes; `tracking` selects tag storage.
    pub fn new(size: usize, tracking: bool) -> Self {
        Ram {
            data: vec![0; size],
            tags: if tracking { vec![Tag::EMPTY; size] } else { Vec::new() },
            tracking,
            epoch: Arc::new(AtomicU64::new(0)),
            census: None,
        }
    }

    /// Wraps into the shared handle used by the SoC.
    pub fn into_shared(self) -> Shared<Ram> {
        shared(self)
    }

    /// Size in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` for zero-sized RAM.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// `true` when per-byte tags are stored.
    pub fn tracking(&self) -> bool {
        self.tracking
    }

    /// Handle to the mutation-epoch counter (see the `epoch` field docs).
    pub fn epoch_handle(&self) -> Arc<AtomicU64> {
        self.epoch.clone()
    }

    /// Current mutation epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    #[inline]
    fn bump_epoch(&self) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Attaches the live-tag census armed by external tag sources.
    pub fn set_census(&mut self, census: SharedCensus) {
        self.census = Some(census);
    }

    #[inline]
    fn arm_census(&self) {
        if let Some(c) = &self.census {
            c.arm();
        }
    }

    /// `true` iff the access `[offset, offset+size)` fits.
    pub fn fits(&self, offset: u32, size: u32) -> bool {
        (offset as usize) + (size as usize) <= self.data.len()
    }

    /// Fast path: loads `size` ∈ {1,2,4} little-endian bytes, returning the
    /// zero-extended value and the LUB of the byte tags.
    ///
    /// # Panics
    /// Panics if out of range — callers bounds-check with [`Ram::fits`].
    pub fn load(&self, offset: u32, size: u32) -> (u32, Tag) {
        let off = offset as usize;
        let mut value = 0u32;
        let mut tag = Tag::EMPTY;
        for i in 0..size as usize {
            value |= (self.data[off + i] as u32) << (8 * i);
            if self.tracking {
                tag = tag.lub(self.tags[off + i]);
            }
        }
        (value, tag)
    }

    /// Fast path: stores the low `size` bytes of `value` with `tag` stamped
    /// on every byte.
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn store(&mut self, offset: u32, size: u32, value: u32, tag: Tag) {
        let off = offset as usize;
        for i in 0..size as usize {
            self.data[off + i] = (value >> (8 * i)) as u8;
            if self.tracking {
                self.tags[off + i] = tag;
            }
        }
    }

    /// Copies a program image (untagged) to `offset`.
    ///
    /// # Panics
    /// Panics if the image does not fit.
    pub fn load_image(&mut self, offset: u32, image: &[u8]) {
        let off = offset as usize;
        self.data[off..off + image.len()].copy_from_slice(image);
        if self.tracking {
            for t in &mut self.tags[off..off + image.len()] {
                *t = Tag::EMPTY;
            }
        }
        self.bump_epoch();
    }

    /// Stamps `tag` onto `[offset, offset+len)` (classification at load
    /// time, per the policy's region rules).
    ///
    /// # Panics
    /// Panics if out of range.
    pub fn classify(&mut self, offset: u32, len: usize, tag: Tag) {
        if !self.tracking {
            return;
        }
        let off = offset as usize;
        for t in &mut self.tags[off..off + len] {
            *t = tag;
        }
        self.bump_epoch();
        if !tag.is_empty() {
            self.arm_census();
        }
    }

    /// Reads a byte with its tag (diagnostics, test assertions).
    pub fn byte_at(&self, offset: u32) -> Option<(u8, Tag)> {
        let v = *self.data.get(offset as usize)?;
        let t = if self.tracking { self.tags[offset as usize] } else { Tag::EMPTY };
        Some((v, t))
    }

    /// Reads `len` raw bytes (values only).
    pub fn bytes(&self, offset: u32, len: usize) -> &[u8] {
        &self.data[offset as usize..offset as usize + len]
    }

    /// Flips bit `bit` (0..8) of the data byte at `offset` — the RAM
    /// data-corruption primitive of the fault-injection campaign. Returns
    /// the new byte value, or `None` when `offset` is out of range.
    pub fn flip_data_bit(&mut self, offset: u32, bit: u32) -> Option<u8> {
        let b = self.data.get_mut(offset as usize)?;
        *b ^= 1u8 << (bit & 7);
        let v = *b;
        self.bump_epoch();
        Some(v)
    }

    /// Flips the presence of `atom` (0..32) in the *tag* of the byte at
    /// `offset` — the DIFT-specific fault: tag state corrupted
    /// independently of the data it describes. Returns the new tag, or
    /// `None` when out of range or when the RAM keeps no tags (plain VP).
    pub fn flip_tag_bit(&mut self, offset: u32, atom: u32) -> Option<Tag> {
        if !self.tracking {
            return None;
        }
        let t = self.tags.get_mut(offset as usize)?;
        let flipped = Tag::from_bits(t.bits() ^ (1u32 << (atom & 31)));
        *t = flipped;
        self.bump_epoch();
        if !flipped.is_empty() {
            self.arm_census();
        }
        Some(flipped)
    }

    /// FNV-1a digest over all data bytes and (when tracking) tag bits —
    /// the memory half of the differential engine harness's final-state
    /// comparison.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in &self.data {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        for t in &self.tags {
            for b in t.bits().to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        }
        h
    }

    /// Counts, per taint atom, how many bytes currently carry that atom —
    /// the taint-spread sample fed to the observability layer. All-zero
    /// when not tracking. O(len); callers sample sparingly.
    pub fn atom_spread(&self) -> [u32; Tag::CAPACITY as usize] {
        let mut counts = [0u32; Tag::CAPACITY as usize];
        for t in &self.tags {
            if !t.is_empty() {
                for atom in t.atoms() {
                    counts[atom as usize] += 1;
                }
            }
        }
        counts
    }
}

impl TlmTarget for Ram {
    fn transport(&mut self, p: &mut GenericPayload, _delay: &mut SimTime) {
        let base = p.address() as usize;
        if base + p.len() > self.data.len() {
            p.set_response(TlmResponse::AddressError);
            return;
        }
        match p.command() {
            TlmCommand::Read => {
                let tracking = self.tracking;
                for (i, b) in p.data_mut().iter_mut().enumerate() {
                    let tag = if tracking { self.tags[base + i] } else { Tag::EMPTY };
                    *b = Taint::new(self.data[base + i], tag);
                }
            }
            TlmCommand::Write => {
                let mut incoming = Tag::EMPTY;
                for (i, b) in p.data().iter().enumerate() {
                    self.data[base + i] = b.value();
                    if self.tracking {
                        self.tags[base + i] = b.tag();
                        incoming = incoming.lub(b.tag());
                    }
                }
                // A DMA burst bypasses the CPU: cached code over the range
                // is stale, and tagged payload bytes are a taint source.
                self.bump_epoch();
                if !incoming.is_empty() {
                    self.arm_census();
                }
            }
            TlmCommand::Ignore => {}
        }
        p.set_response(TlmResponse::Ok);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_path_round_trip_with_tags() {
        let mut ram = Ram::new(64, true);
        ram.store(8, 4, 0xAABB_CCDD, Tag::atom(1));
        assert_eq!(ram.load(8, 4), (0xAABB_CCDD, Tag::atom(1)));
        assert_eq!(ram.load(9, 2), (0xBBCC, Tag::atom(1)));
        assert_eq!(ram.load(0, 4), (0, Tag::EMPTY));
    }

    #[test]
    fn untracked_ram_has_no_tags() {
        let mut ram = Ram::new(64, false);
        ram.store(0, 4, 5, Tag::atom(3));
        assert_eq!(ram.load(0, 4), (5, Tag::EMPTY));
        assert!(!ram.tracking());
        ram.classify(0, 8, Tag::atom(1)); // no-op
        assert_eq!(ram.byte_at(0).unwrap().1, Tag::EMPTY);
    }

    #[test]
    fn image_load_clears_tags_then_classify_stamps() {
        let mut ram = Ram::new(32, true);
        ram.classify(0, 8, Tag::atom(0));
        ram.load_image(0, &[1, 2, 3, 4]);
        assert_eq!(ram.byte_at(0).unwrap(), (1, Tag::EMPTY));
        ram.classify(2, 2, Tag::atom(5));
        assert_eq!(ram.byte_at(2).unwrap(), (3, Tag::atom(5)));
        assert_eq!(ram.bytes(0, 4), &[1, 2, 3, 4]);
    }

    #[test]
    fn atom_spread_counts_tagged_bytes() {
        let mut ram = Ram::new(64, true);
        ram.classify(0, 8, Tag::atom(0));
        ram.classify(4, 8, Tag::from_bits(0b101)); // overwrites bytes 4..8
        let spread = ram.atom_spread();
        assert_eq!(spread[0], 12, "atoms 0: bytes 0..4 plus 4..12");
        assert_eq!(spread[2], 8);
        assert_eq!(spread[1], 0);
        assert_eq!(Ram::new(16, false).atom_spread(), [0; 32]);
    }

    #[test]
    fn bit_flips_hit_data_and_tags_independently() {
        let mut ram = Ram::new(16, true);
        ram.store(0, 1, 0b0000_0001, Tag::atom(1));
        assert_eq!(ram.flip_data_bit(0, 3), Some(0b0000_1001));
        assert_eq!(ram.byte_at(0).unwrap().1, Tag::atom(1), "data flip leaves the tag");
        assert_eq!(ram.flip_tag_bit(0, 5), Some(Tag::atom(1).lub(Tag::atom(5))));
        assert_eq!(ram.byte_at(0).unwrap().0, 0b0000_1001, "tag flip leaves the data");
        // Flipping the same atom again removes it.
        assert_eq!(ram.flip_tag_bit(0, 5), Some(Tag::atom(1)));
        // Out of range / untracked.
        assert_eq!(ram.flip_data_bit(99, 0), None);
        assert_eq!(Ram::new(16, false).flip_tag_bit(0, 0), None);
    }

    #[test]
    fn tlm_target_reads_and_writes_tagged() {
        let mut ram = Ram::new(32, true);
        let mut w =
            GenericPayload::write(4, &[Taint::new(9, Tag::atom(2)), Taint::new(8, Tag::EMPTY)]);
        ram.transport(&mut w, &mut SimTime::ZERO.clone());
        assert!(w.is_ok());
        let mut r = GenericPayload::read(4, 2);
        ram.transport(&mut r, &mut SimTime::ZERO.clone());
        assert_eq!(r.data()[0].value(), 9);
        assert_eq!(r.data()[0].tag(), Tag::atom(2));
        assert_eq!(r.data()[1].tag(), Tag::EMPTY);
    }

    #[test]
    fn tlm_target_bounds_checked() {
        let mut ram = Ram::new(8, false);
        let mut p = GenericPayload::read(6, 4);
        ram.transport(&mut p, &mut SimTime::ZERO.clone());
        assert_eq!(p.response(), TlmResponse::AddressError);
        assert!(ram.fits(4, 4));
        assert!(!ram.fits(5, 4));
    }
}
