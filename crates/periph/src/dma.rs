//! DMA controller with tag-preserving transfers.
//!
//! DMA is one of the "complex HW/SW interactions" the paper's introduction
//! calls out: data can move *around* the CPU, so a DIFT engine that only
//! instruments the core misses these flows. Our controller copies through
//! TLM payloads whose data lanes carry tags, so classification travels with
//! the bytes — and transfers into protected regions are still subject to
//! the policy's store-clearance rules.

use vpdift_core::{SharedEngine, Taint, Violation};
use vpdift_kernel::SimTime;
use vpdift_sync::{shared, Shared};
use vpdift_tlm::{GenericPayload, Router, TlmCommand, TlmResponse, TlmTarget};

use crate::mmio::{get_word, put_word};
use crate::plic::IrqLine;

/// Hardware limit on a single transfer; `CTRL` writes with a larger
/// staged `LEN` fail with the error bit (real DMA engines bound their
/// descriptor length field the same way).
pub const MAX_TRANSFER: u32 = 1 << 20;

/// Register map (word-aligned offsets).
pub mod regs {
    /// Read/write: source bus address.
    pub const SRC: u32 = 0x0;
    /// Read/write: destination bus address.
    pub const DST: u32 = 0x4;
    /// Read/write: transfer length in bytes.
    pub const LEN: u32 = 0x8;
    /// Write 1: start the transfer (runs to completion in this LT model).
    pub const CTRL: u32 = 0xC;
    /// Read: bit 0 = done, bit 1 = error.
    pub const STATUS: u32 = 0x10;
}

/// The DMA controller. It owns a *private* [`Router`] (configured by the
/// SoC with the same shared targets as the system bus, minus the DMA
/// itself), which keeps transfers re-entrant-safe.
pub struct Dma {
    ports: Router,
    engine: Option<SharedEngine>,
    irq: Option<IrqLine>,
    src: u32,
    dst: u32,
    len: u32,
    done: bool,
    error: bool,
    bytes_moved: u64,
    abort_after: Option<u32>,
}

impl core::fmt::Debug for Dma {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Dma")
            .field("src", &self.src)
            .field("dst", &self.dst)
            .field("len", &self.len)
            .field("done", &self.done)
            .field("error", &self.error)
            .field("bytes_moved", &self.bytes_moved)
            .finish()
    }
}

impl Dma {
    /// Creates a controller whose transfers go through `ports`. When an
    /// `engine` is attached, destination bytes are checked against the
    /// policy's protected-region rules (store clearance).
    pub fn new(ports: Router, engine: Option<SharedEngine>, irq: Option<IrqLine>) -> Self {
        Dma {
            ports,
            engine,
            irq,
            src: 0,
            dst: 0,
            len: 0,
            done: false,
            error: false,
            bytes_moved: 0,
            abort_after: None,
        }
    }

    /// Fault injection: arms a one-shot mid-burst abort. The *next*
    /// transfer fails with the error status bit once it has moved `bytes`
    /// bytes, leaving the destination partially written — then the arm is
    /// cleared, so subsequent transfers run normally.
    pub fn inject_abort_after(&mut self, bytes: u32) {
        self.abort_after = Some(bytes);
    }

    /// Wraps into the shared handle used by the SoC.
    pub fn into_shared(self) -> Shared<Dma> {
        shared(self)
    }

    /// Total bytes copied over the controller's lifetime.
    pub fn bytes_moved(&self) -> u64 {
        self.bytes_moved
    }

    /// Performs the staged transfer. Chunked in 16-byte bursts.
    fn run_transfer(&mut self, delay: &mut SimTime) -> Result<(), Option<Violation>> {
        if self.len > MAX_TRANSFER {
            return Err(None);
        }
        let mut remaining = self.len;
        let mut src = self.src;
        let mut dst = self.dst;
        let mut moved_this_transfer = 0u32;
        while remaining > 0 {
            if let Some(limit) = self.abort_after {
                if moved_this_transfer >= limit {
                    self.abort_after = None;
                    return Err(None);
                }
            }
            let chunk = remaining.min(16) as usize;
            let mut rd = GenericPayload::read(src, chunk);
            self.ports.route(&mut rd, delay);
            if !rd.is_ok() {
                return Err(rd.take_violation());
            }
            // Store clearance for protected destination regions.
            if let Some(engine) = &self.engine {
                let mut eng = engine.borrow_mut();
                for (i, b) in rd.data().iter().enumerate() {
                    eng.check_store(dst + i as u32, b.tag(), None)
                        .map_err(|v| Some(v.with_context("dma transfer")))?;
                }
            }
            let mut wr = GenericPayload::write(dst, rd.data());
            self.ports.route(&mut wr, delay);
            if !wr.is_ok() {
                return Err(wr.take_violation());
            }
            self.bytes_moved += chunk as u64;
            moved_this_transfer += chunk as u32;
            src += chunk as u32;
            dst += chunk as u32;
            remaining -= chunk as u32;
        }
        self.abort_after = None;
        Ok(())
    }
}

impl TlmTarget for Dma {
    fn transport(&mut self, p: &mut GenericPayload, delay: &mut SimTime) {
        let addr = p.address();
        match p.command() {
            TlmCommand::Write => match addr {
                regs::SRC => {
                    self.src = get_word(p).value();
                    p.set_response(TlmResponse::Ok);
                }
                regs::DST => {
                    self.dst = get_word(p).value();
                    p.set_response(TlmResponse::Ok);
                }
                regs::LEN => {
                    self.len = get_word(p).value();
                    p.set_response(TlmResponse::Ok);
                }
                regs::CTRL => {
                    self.done = false;
                    self.error = false;
                    match self.run_transfer(delay) {
                        Ok(()) => {
                            self.done = true;
                            if let Some(irq) = &self.irq {
                                irq.raise();
                            }
                            p.set_response(TlmResponse::Ok);
                        }
                        Err(Some(v)) => {
                            self.error = true;
                            p.set_violation(v);
                        }
                        Err(None) => {
                            self.error = true;
                            p.set_response(TlmResponse::GenericError);
                        }
                    }
                }
                _ => p.set_response(TlmResponse::CommandError),
            },
            TlmCommand::Read => match addr {
                regs::SRC => {
                    put_word(p, Taint::untainted(self.src));
                    p.set_response(TlmResponse::Ok);
                }
                regs::DST => {
                    put_word(p, Taint::untainted(self.dst));
                    p.set_response(TlmResponse::Ok);
                }
                regs::LEN => {
                    put_word(p, Taint::untainted(self.len));
                    p.set_response(TlmResponse::Ok);
                }
                regs::STATUS => {
                    let s = self.done as u32 | ((self.error as u32) << 1);
                    put_word(p, Taint::untainted(s));
                    p.set_response(TlmResponse::Ok);
                }
                _ => p.set_response(TlmResponse::CommandError),
            },
            TlmCommand::Ignore => p.set_response(TlmResponse::Ok),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ram::Ram;
    use vpdift_core::Tag;
    use vpdift_core::{AddrRange, DiftEngine, SecurityPolicy, ViolationKind};

    const SECRET: Tag = Tag::from_bits(1);

    fn dma_with_ram() -> (Dma, Shared<Ram>) {
        let ram = Ram::new(4096, true).into_shared();
        let mut ports = Router::new("dma-ports");
        ports.map("ram", AddrRange::new(0, 4096), ram.clone()).unwrap();
        (Dma::new(ports, None, None), ram)
    }

    fn wr(d: &mut Dma, reg: u32, v: u32) -> GenericPayload {
        let mut p = GenericPayload::write_word(reg, Taint::untainted(v));
        d.transport(&mut p, &mut SimTime::ZERO.clone());
        p
    }

    fn rd(d: &mut Dma, reg: u32) -> u32 {
        let mut p = GenericPayload::read(reg, 4);
        d.transport(&mut p, &mut SimTime::ZERO.clone());
        p.data_word::<u32>().value()
    }

    #[test]
    fn copy_preserves_values_and_tags() {
        let (mut d, ram) = dma_with_ram();
        {
            let mut ram = ram.borrow_mut();
            ram.load_image(0x100, &[1, 2, 3, 4, 5, 6, 7]);
            ram.classify(0x102, 3, SECRET);
        }
        wr(&mut d, regs::SRC, 0x100);
        wr(&mut d, regs::DST, 0x200);
        wr(&mut d, regs::LEN, 7);
        assert!(wr(&mut d, regs::CTRL, 1).is_ok());
        assert_eq!(rd(&mut d, regs::STATUS), 1);
        assert_eq!(d.bytes_moved(), 7);
        let ram = ram.borrow();
        assert_eq!(ram.bytes(0x200, 7), &[1, 2, 3, 4, 5, 6, 7]);
        // Taint travelled with the bytes — the flow the CPU never saw.
        assert_eq!(ram.byte_at(0x201).unwrap().1, Tag::EMPTY);
        assert_eq!(ram.byte_at(0x202).unwrap().1, SECRET);
        assert_eq!(ram.byte_at(0x204).unwrap().1, SECRET);
        assert_eq!(ram.byte_at(0x205).unwrap().1, Tag::EMPTY);
    }

    #[test]
    fn long_transfer_chunks() {
        let (mut d, ram) = dma_with_ram();
        let data: Vec<u8> = (0..100).collect();
        ram.borrow_mut().load_image(0, &data);
        wr(&mut d, regs::SRC, 0);
        wr(&mut d, regs::DST, 0x800);
        wr(&mut d, regs::LEN, 100);
        assert!(wr(&mut d, regs::CTRL, 1).is_ok());
        assert_eq!(ram.borrow().bytes(0x800, 100), &data[..]);
    }

    #[test]
    fn dma_into_protected_region_violates() {
        let ram = Ram::new(4096, true).into_shared();
        let mut ports = Router::new("dma-ports");
        ports.map("ram", AddrRange::new(0, 4096), ram.clone()).unwrap();
        let policy = SecurityPolicy::builder("t")
            .protect_region("pin", AddrRange::new(0x300, 16), Tag::EMPTY)
            .build();
        let engine = DiftEngine::new(policy).into_shared();
        let mut d = Dma::new(ports, Some(engine.clone()), None);
        ram.borrow_mut().classify(0x100, 4, SECRET);
        wr(&mut d, regs::SRC, 0x100);
        wr(&mut d, regs::DST, 0x300);
        wr(&mut d, regs::LEN, 4);
        let mut go = wr(&mut d, regs::CTRL, 1);
        let v = go.take_violation().expect("violation");
        assert!(matches!(v.kind, ViolationKind::Store { ref region } if region == "pin"));
        assert_eq!(rd(&mut d, regs::STATUS), 0b10, "error bit set");
    }

    #[test]
    fn out_of_range_transfer_errors() {
        let (mut d, _ram) = dma_with_ram();
        wr(&mut d, regs::SRC, 0x10_0000);
        wr(&mut d, regs::DST, 0);
        wr(&mut d, regs::LEN, 4);
        let p = wr(&mut d, regs::CTRL, 1);
        assert_eq!(p.response(), TlmResponse::GenericError);
        assert_eq!(rd(&mut d, regs::STATUS), 0b10);
    }

    #[test]
    fn irq_raised_on_completion() {
        let plic = crate::plic::Plic::new().into_shared();
        let ram = Ram::new(64, false).into_shared();
        let mut ports = Router::new("dma-ports");
        ports.map("ram", AddrRange::new(0, 64), ram).unwrap();
        let mut d = Dma::new(ports, None, Some(IrqLine::new(plic.clone(), 4)));
        wr(&mut d, regs::SRC, 0);
        wr(&mut d, regs::DST, 32);
        wr(&mut d, regs::LEN, 8);
        wr(&mut d, regs::CTRL, 1);
        assert_eq!(plic.borrow().pending(), 1 << 4);
    }

    #[test]
    fn injected_abort_is_one_shot_and_leaves_partial_copy() {
        let (mut d, ram) = dma_with_ram();
        let data: Vec<u8> = (1..=64).collect();
        ram.borrow_mut().load_image(0, &data);
        d.inject_abort_after(32);
        wr(&mut d, regs::SRC, 0);
        wr(&mut d, regs::DST, 0x800);
        wr(&mut d, regs::LEN, 64);
        let p = wr(&mut d, regs::CTRL, 1);
        assert_eq!(p.response(), TlmResponse::GenericError);
        assert_eq!(rd(&mut d, regs::STATUS), 0b10, "error bit set");
        let copied = ram.borrow().bytes(0x800, 64).to_vec();
        assert_eq!(&copied[..32], &data[..32], "first two bursts landed");
        assert!(copied[32..].iter().all(|&b| b == 0), "abort before the third burst");
        // The arm is one-shot: retrying the same transfer now succeeds.
        let p = wr(&mut d, regs::CTRL, 1);
        assert!(p.is_ok());
        assert_eq!(ram.borrow().bytes(0x800, 64), &data[..]);
    }

    #[test]
    fn register_readback() {
        let (mut d, _) = dma_with_ram();
        wr(&mut d, regs::SRC, 0xAA);
        wr(&mut d, regs::DST, 0xBB);
        wr(&mut d, regs::LEN, 0xCC);
        assert_eq!(rd(&mut d, regs::SRC), 0xAA);
        assert_eq!(rd(&mut d, regs::DST), 0xBB);
        assert_eq!(rd(&mut d, regs::LEN), 0xCC);
    }
}
