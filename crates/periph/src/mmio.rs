//! Small helpers shared by all memory-mapped peripherals.

use vpdift_core::Taint;
use vpdift_tlm::GenericPayload;

/// Copies a tainted register word into a payload of 1, 2 or 4 bytes
/// (sub-word MMIO reads see the low bytes).
pub fn put_word(p: &mut GenericPayload, word: Taint<u32>) {
    let mut lanes = [Taint::untainted(0u8); 4];
    word.to_bytes(&mut lanes);
    let n = p.len().min(4);
    p.data_mut()[..n].copy_from_slice(&lanes[..n]);
}

/// Reassembles the payload's (1–4 byte) data lane into a tainted word,
/// zero-extending and LUB-ing byte tags.
pub fn get_word(p: &GenericPayload) -> Taint<u32> {
    let mut lanes = [Taint::untainted(0u8); 4];
    let n = p.len().min(4);
    lanes[..n].copy_from_slice(&p.data()[..n]);
    Taint::from_bytes(&lanes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdift_core::Tag;

    #[test]
    fn word_round_trip_full_width() {
        let mut p = GenericPayload::read(0, 4);
        put_word(&mut p, Taint::new(0x1234_5678, Tag::atom(1)));
        let w = get_word(&p);
        assert_eq!(w.value(), 0x1234_5678);
        assert_eq!(w.tag(), Tag::atom(1));
    }

    #[test]
    fn sub_word_sees_low_bytes() {
        let mut p = GenericPayload::read(0, 1);
        put_word(&mut p, Taint::new(0xAABB_CCDD, Tag::atom(0)));
        assert_eq!(p.data()[0].value(), 0xDD);
        assert_eq!(get_word(&p).value(), 0xDD);
        assert_eq!(get_word(&p).tag(), Tag::atom(0));
    }
}
