//! A from-scratch FIPS-197 AES-128 block cipher.
//!
//! This is the functional model inside the [`crate::aes::AesEngine`]
//! peripheral (the immobilizer's challenge-response crypto). It is a plain
//! software implementation — correct, not constant-time; the VP threat
//! model (paper §IV-B) trusts the hardware, so side channels of the *model*
//! are out of scope.

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// The inverse S-box, derived from [`SBOX`] at first use.
fn inv_sbox() -> [u8; 256] {
    let mut inv = [0u8; 256];
    for (i, &s) in SBOX.iter().enumerate() {
        inv[s as usize] = i as u8;
    }
    inv
}

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

fn xtime(b: u8) -> u8 {
    (b << 1) ^ if b & 0x80 != 0 { 0x1b } else { 0 }
}

fn gmul(mut a: u8, mut b: u8) -> u8 {
    let mut p = 0u8;
    for _ in 0..8 {
        if b & 1 != 0 {
            p ^= a;
        }
        a = xtime(a);
        b >>= 1;
    }
    p
}

/// An expanded AES-128 key schedule.
#[derive(Clone)]
pub struct Aes128 {
    round_keys: [[u8; 16]; 11],
}

impl core::fmt::Debug for Aes128 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Never print key material.
        f.write_str("Aes128 { round_keys: [redacted] }")
    }
}

impl Aes128 {
    /// Expands a 128-bit key.
    pub fn new(key: &[u8; 16]) -> Self {
        let mut w = [[0u8; 4]; 44];
        for i in 0..4 {
            w[i].copy_from_slice(&key[4 * i..4 * i + 4]);
        }
        for i in 4..44 {
            let mut temp = w[i - 1];
            if i % 4 == 0 {
                temp.rotate_left(1);
                for t in &mut temp {
                    *t = SBOX[*t as usize];
                }
                temp[0] ^= RCON[i / 4 - 1];
            }
            for j in 0..4 {
                w[i][j] = w[i - 4][j] ^ temp[j];
            }
        }
        let mut round_keys = [[0u8; 16]; 11];
        for (r, rk) in round_keys.iter_mut().enumerate() {
            for c in 0..4 {
                rk[4 * c..4 * c + 4].copy_from_slice(&w[4 * r + c]);
            }
        }
        Aes128 { round_keys }
    }

    fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
        for (s, k) in state.iter_mut().zip(rk) {
            *s ^= k;
        }
    }

    fn sub_bytes(state: &mut [u8; 16], sbox: &[u8; 256]) {
        for s in state.iter_mut() {
            *s = sbox[*s as usize];
        }
    }

    /// State layout: column-major as in FIPS-197 (byte `i` is row `i % 4`,
    /// column `i / 4`).
    fn shift_rows(state: &mut [u8; 16]) {
        for row in 1..4 {
            let mut tmp = [0u8; 4];
            for col in 0..4 {
                tmp[col] = state[((col + row) % 4) * 4 + row];
            }
            for col in 0..4 {
                state[col * 4 + row] = tmp[col];
            }
        }
    }

    fn inv_shift_rows(state: &mut [u8; 16]) {
        for row in 1..4 {
            let mut tmp = [0u8; 4];
            for col in 0..4 {
                tmp[(col + row) % 4] = state[col * 4 + row];
            }
            for col in 0..4 {
                state[col * 4 + row] = tmp[col];
            }
        }
    }

    fn mix_columns(state: &mut [u8; 16]) {
        for col in 0..4 {
            let c = &mut state[col * 4..col * 4 + 4];
            let (a0, a1, a2, a3) = (c[0], c[1], c[2], c[3]);
            c[0] = xtime(a0) ^ (xtime(a1) ^ a1) ^ a2 ^ a3;
            c[1] = a0 ^ xtime(a1) ^ (xtime(a2) ^ a2) ^ a3;
            c[2] = a0 ^ a1 ^ xtime(a2) ^ (xtime(a3) ^ a3);
            c[3] = (xtime(a0) ^ a0) ^ a1 ^ a2 ^ xtime(a3);
        }
    }

    fn inv_mix_columns(state: &mut [u8; 16]) {
        for col in 0..4 {
            let c = &mut state[col * 4..col * 4 + 4];
            let (a0, a1, a2, a3) = (c[0], c[1], c[2], c[3]);
            c[0] = gmul(a0, 14) ^ gmul(a1, 11) ^ gmul(a2, 13) ^ gmul(a3, 9);
            c[1] = gmul(a0, 9) ^ gmul(a1, 14) ^ gmul(a2, 11) ^ gmul(a3, 13);
            c[2] = gmul(a0, 13) ^ gmul(a1, 9) ^ gmul(a2, 14) ^ gmul(a3, 11);
            c[3] = gmul(a0, 11) ^ gmul(a1, 13) ^ gmul(a2, 9) ^ gmul(a3, 14);
        }
    }

    /// Encrypts one 16-byte block.
    pub fn encrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut state = *block;
        Self::add_round_key(&mut state, &self.round_keys[0]);
        for round in 1..10 {
            Self::sub_bytes(&mut state, &SBOX);
            Self::shift_rows(&mut state);
            Self::mix_columns(&mut state);
            Self::add_round_key(&mut state, &self.round_keys[round]);
        }
        Self::sub_bytes(&mut state, &SBOX);
        Self::shift_rows(&mut state);
        Self::add_round_key(&mut state, &self.round_keys[10]);
        state
    }

    /// Decrypts one 16-byte block.
    pub fn decrypt_block(&self, block: &[u8; 16]) -> [u8; 16] {
        let inv = inv_sbox();
        let mut state = *block;
        Self::add_round_key(&mut state, &self.round_keys[10]);
        for round in (1..10).rev() {
            Self::inv_shift_rows(&mut state);
            Self::sub_bytes(&mut state, &inv);
            Self::add_round_key(&mut state, &self.round_keys[round]);
            Self::inv_mix_columns(&mut state);
        }
        Self::inv_shift_rows(&mut state);
        Self::sub_bytes(&mut state, &inv);
        Self::add_round_key(&mut state, &self.round_keys[0]);
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(s: &str) -> [u8; 16] {
        let mut out = [0u8; 16];
        for i in 0..16 {
            out[i] = u8::from_str_radix(&s[2 * i..2 * i + 2], 16).unwrap();
        }
        out
    }

    #[test]
    fn fips197_appendix_b() {
        let aes = Aes128::new(&hex("2b7e151628aed2a6abf7158809cf4f3c"));
        let ct = aes.encrypt_block(&hex("3243f6a8885a308d313198a2e0370734"));
        assert_eq!(ct, hex("3925841d02dc09fbdc118597196a0b32"));
    }

    #[test]
    fn fips197_appendix_c() {
        let aes = Aes128::new(&hex("000102030405060708090a0b0c0d0e0f"));
        let ct = aes.encrypt_block(&hex("00112233445566778899aabbccddeeff"));
        assert_eq!(ct, hex("69c4e0d86a7b0430d8cdb78070b4c55a"));
    }

    #[test]
    fn nist_sp800_38a_ecb_vectors() {
        let aes = Aes128::new(&hex("2b7e151628aed2a6abf7158809cf4f3c"));
        let cases = [
            ("6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97"),
            ("ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf"),
            ("30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688"),
            ("f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4"),
        ];
        for (pt, ct) in cases {
            assert_eq!(aes.encrypt_block(&hex(pt)), hex(ct));
        }
    }

    #[test]
    fn decrypt_inverts_encrypt() {
        let aes = Aes128::new(&hex("000102030405060708090a0b0c0d0e0f"));
        for seed in 0u8..16 {
            let mut pt = [0u8; 16];
            for (i, b) in pt.iter_mut().enumerate() {
                *b = seed.wrapping_mul(31).wrapping_add(i as u8 * 7);
            }
            assert_eq!(aes.decrypt_block(&aes.encrypt_block(&pt)), pt);
        }
    }

    #[test]
    fn debug_redacts_keys() {
        let aes = Aes128::new(&[0u8; 16]);
        assert_eq!(format!("{aes:?}"), "Aes128 { round_keys: [redacted] }");
    }
}
