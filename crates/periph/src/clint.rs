//! Core-local interruptor: machine timer (`mtime`/`mtimecmp`) and software
//! interrupt (`msip`), as in the SiFive/RISC-V VP memory map.

use vpdift_core::Taint;
use vpdift_kernel::SimTime;
use vpdift_sync::{shared, Shared};
use vpdift_tlm::{GenericPayload, TlmCommand, TlmResponse, TlmTarget};

use crate::mmio::{get_word, put_word};

/// Register map (offsets within the CLINT region).
pub mod regs {
    /// Read/write: machine software interrupt pending (bit 0).
    pub const MSIP: u32 = 0x0000;
    /// Read/write: timer compare, low word.
    pub const MTIMECMP_LO: u32 = 0x4000;
    /// Read/write: timer compare, high word.
    pub const MTIMECMP_HI: u32 = 0x4004;
    /// Read/write: timer, low word.
    pub const MTIME_LO: u32 = 0xBFF8;
    /// Read/write: timer, high word.
    pub const MTIME_HI: u32 = 0xBFFC;
}

/// The CLINT model. The SoC advances `mtime` as simulated time passes.
#[derive(Debug, Default)]
pub struct Clint {
    mtime: u64,
    mtimecmp: u64,
    msip: bool,
}

impl Clint {
    /// Creates a CLINT with `mtime = 0` and the comparator at max (no
    /// pending timer interrupt).
    pub fn new() -> Self {
        Clint { mtime: 0, mtimecmp: u64::MAX, msip: false }
    }

    /// Wraps into the shared handle used by the SoC.
    pub fn into_shared(self) -> Shared<Clint> {
        shared(self)
    }

    /// Current timer value.
    pub fn mtime(&self) -> u64 {
        self.mtime
    }

    /// Sets the timer (SoC clock coupling).
    pub fn set_mtime(&mut self, t: u64) {
        self.mtime = t;
    }

    /// Advances the timer by `ticks`.
    pub fn advance(&mut self, ticks: u64) {
        self.mtime = self.mtime.wrapping_add(ticks);
    }

    /// `true` while the timer interrupt is asserted (`mtime >= mtimecmp`).
    pub fn timer_pending(&self) -> bool {
        self.mtime >= self.mtimecmp
    }

    /// The current comparator value (`u64::MAX` = timer disarmed).
    pub fn mtimecmp_value(&self) -> u64 {
        self.mtimecmp
    }

    /// `true` while the software interrupt is asserted.
    pub fn soft_pending(&self) -> bool {
        self.msip
    }
}

impl TlmTarget for Clint {
    fn transport(&mut self, p: &mut GenericPayload, _delay: &mut SimTime) {
        match (p.command(), p.address()) {
            (TlmCommand::Read, regs::MSIP) => {
                put_word(p, Taint::untainted(self.msip as u32));
                p.set_response(TlmResponse::Ok);
            }
            (TlmCommand::Write, regs::MSIP) => {
                self.msip = get_word(p).value() & 1 != 0;
                p.set_response(TlmResponse::Ok);
            }
            (TlmCommand::Read, regs::MTIMECMP_LO) => {
                put_word(p, Taint::untainted(self.mtimecmp as u32));
                p.set_response(TlmResponse::Ok);
            }
            (TlmCommand::Read, regs::MTIMECMP_HI) => {
                put_word(p, Taint::untainted((self.mtimecmp >> 32) as u32));
                p.set_response(TlmResponse::Ok);
            }
            (TlmCommand::Write, regs::MTIMECMP_LO) => {
                let v = get_word(p).value() as u64;
                self.mtimecmp = (self.mtimecmp & 0xFFFF_FFFF_0000_0000) | v;
                p.set_response(TlmResponse::Ok);
            }
            (TlmCommand::Write, regs::MTIMECMP_HI) => {
                let v = (get_word(p).value() as u64) << 32;
                self.mtimecmp = (self.mtimecmp & 0xFFFF_FFFF) | v;
                p.set_response(TlmResponse::Ok);
            }
            (TlmCommand::Read, regs::MTIME_LO) => {
                put_word(p, Taint::untainted(self.mtime as u32));
                p.set_response(TlmResponse::Ok);
            }
            (TlmCommand::Read, regs::MTIME_HI) => {
                put_word(p, Taint::untainted((self.mtime >> 32) as u32));
                p.set_response(TlmResponse::Ok);
            }
            (TlmCommand::Write, regs::MTIME_LO) => {
                let v = get_word(p).value() as u64;
                self.mtime = (self.mtime & 0xFFFF_FFFF_0000_0000) | v;
                p.set_response(TlmResponse::Ok);
            }
            (TlmCommand::Write, regs::MTIME_HI) => {
                let v = (get_word(p).value() as u64) << 32;
                self.mtime = (self.mtime & 0xFFFF_FFFF) | v;
                p.set_response(TlmResponse::Ok);
            }
            _ => p.set_response(TlmResponse::CommandError),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_comparison() {
        let mut c = Clint::new();
        assert!(!c.timer_pending());
        c.mtimecmp = 100;
        c.set_mtime(99);
        assert!(!c.timer_pending());
        c.advance(1);
        assert!(c.timer_pending());
        assert_eq!(c.mtime(), 100);
    }

    #[test]
    fn mmio_mtimecmp_64bit() {
        let mut c = Clint::new();
        let mut d = SimTime::ZERO;
        let mut lo = GenericPayload::write_word(regs::MTIMECMP_LO, Taint::untainted(0x55u32));
        c.transport(&mut lo, &mut d);
        let mut hi = GenericPayload::write_word(regs::MTIMECMP_HI, Taint::untainted(0x1u32));
        c.transport(&mut hi, &mut d);
        assert_eq!(c.mtimecmp, 0x1_0000_0055);

        c.set_mtime(0xABCD_1234_5678);
        let mut r = GenericPayload::read(regs::MTIME_LO, 4);
        c.transport(&mut r, &mut d);
        assert_eq!(r.data_word::<u32>().value(), 0x1234_5678);
        let mut rh = GenericPayload::read(regs::MTIME_HI, 4);
        c.transport(&mut rh, &mut d);
        assert_eq!(rh.data_word::<u32>().value(), 0xABCD);
    }

    #[test]
    fn msip_round_trip() {
        let mut c = Clint::new();
        let mut d = SimTime::ZERO;
        assert!(!c.soft_pending());
        let mut w = GenericPayload::write_word(regs::MSIP, Taint::untainted(1u32));
        c.transport(&mut w, &mut d);
        assert!(c.soft_pending());
        let mut r = GenericPayload::read(regs::MSIP, 4);
        c.transport(&mut r, &mut d);
        assert_eq!(r.data_word::<u32>().value(), 1);
    }

    #[test]
    fn unknown_offset_rejected() {
        let mut c = Clint::new();
        let mut p = GenericPayload::read(0x1234, 4);
        c.transport(&mut p, &mut SimTime::ZERO.clone());
        assert_eq!(p.response(), TlmResponse::CommandError);
    }
}
