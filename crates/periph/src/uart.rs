//! UART transmitter — the VP's clearance-checked output interface.
//!
//! Every byte written to `TXDATA` is checked against the policy clearance
//! of the sink `"<name>.tx"` before it "leaves the system"; secret data
//! hitting the UART is exactly the paper's immobilizer debug-dump leak.

use vpdift_core::SharedEngine;
use vpdift_kernel::SimTime;
use vpdift_sync::{shared, Shared};
use vpdift_tlm::{GenericPayload, TlmCommand, TlmResponse, TlmTarget};

/// Register map (word-aligned offsets).
pub mod regs {
    /// Write: transmit one byte (low 8 bits of the access).
    pub const TXDATA: u32 = 0x0;
    /// Read: transmitter status; bit 0 = ready (always set in this model).
    pub const TXSTATUS: u32 = 0x4;
}

/// The UART model.
#[derive(Debug)]
pub struct Uart {
    name: String,
    sink: String,
    engine: SharedEngine,
    tx_log: Vec<u8>,
}

impl Uart {
    /// Creates a UART named `name`; its output sink is `"<name>.tx"`.
    pub fn new(name: &str, engine: SharedEngine) -> Self {
        Uart { name: name.to_owned(), sink: format!("{name}.tx"), engine, tx_log: Vec::new() }
    }

    /// Wraps into the shared handle used by the SoC.
    pub fn into_shared(self) -> Shared<Uart> {
        shared(self)
    }

    /// Instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bytes transmitted so far (only bytes that passed the clearance
    /// check reach the log — blocked bytes never left the system).
    pub fn output(&self) -> &[u8] {
        &self.tx_log
    }

    /// Transmitted bytes as a lossy string.
    pub fn output_string(&self) -> String {
        String::from_utf8_lossy(&self.tx_log).into_owned()
    }

    /// Drains the transmit log.
    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.tx_log)
    }
}

impl TlmTarget for Uart {
    fn transport(&mut self, p: &mut GenericPayload, _delay: &mut SimTime) {
        match (p.command(), p.address()) {
            (TlmCommand::Write, regs::TXDATA) => {
                let byte = p.data()[0];
                match self.engine.borrow_mut().check_output(&self.sink, byte.tag(), None) {
                    Ok(()) => {
                        self.tx_log.push(byte.value());
                        p.set_response(TlmResponse::Ok);
                    }
                    Err(v) => p.set_violation(v),
                }
            }
            (TlmCommand::Read, regs::TXSTATUS) => {
                p.data_mut()[0] = vpdift_core::Taint::untainted(1);
                for b in &mut p.data_mut()[1..] {
                    *b = vpdift_core::Taint::untainted(0);
                }
                p.set_response(TlmResponse::Ok);
            }
            (TlmCommand::Read, regs::TXDATA) => {
                for b in p.data_mut() {
                    *b = vpdift_core::Taint::untainted(0);
                }
                p.set_response(TlmResponse::Ok);
            }
            _ => p.set_response(TlmResponse::CommandError),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdift_core::{DiftEngine, SecurityPolicy, Tag, Taint, ViolationKind};

    const SECRET: Tag = Tag::from_bits(1);

    fn uart() -> Uart {
        let policy = SecurityPolicy::builder("t").sink("uart0.tx", Tag::EMPTY).build();
        Uart::new("uart0", DiftEngine::new(policy).into_shared())
    }

    fn tx(u: &mut Uart, byte: Taint<u8>) -> GenericPayload {
        let mut p = GenericPayload::write(regs::TXDATA, &[byte]);
        u.transport(&mut p, &mut SimTime::ZERO.clone());
        p
    }

    #[test]
    fn public_bytes_pass() {
        let mut u = uart();
        for &b in b"hi" {
            assert!(tx(&mut u, Taint::untainted(b)).is_ok());
        }
        assert_eq!(u.output_string(), "hi");
        assert_eq!(u.name(), "uart0");
    }

    #[test]
    fn secret_byte_blocked_with_violation() {
        let mut u = uart();
        let mut p = tx(&mut u, Taint::new(b'X', SECRET));
        let v = p.take_violation().expect("violation attached");
        assert_eq!(v.kind, ViolationKind::Output { sink: "uart0.tx".into() });
        assert!(u.output().is_empty(), "blocked byte never transmitted");
        assert!(u.engine.borrow().violated());
    }

    #[test]
    fn status_reads_ready() {
        let mut u = uart();
        let mut p = GenericPayload::read(regs::TXSTATUS, 4);
        u.transport(&mut p, &mut SimTime::ZERO.clone());
        assert!(p.is_ok());
        assert_eq!(p.data_word::<u32>().value(), 1);
    }

    #[test]
    fn take_output_drains() {
        let mut u = uart();
        let _ = tx(&mut u, Taint::untainted(b'a'));
        assert_eq!(u.take_output(), b"a");
        assert!(u.output().is_empty());
    }

    #[test]
    fn unknown_register_is_command_error() {
        let mut u = uart();
        let mut p = GenericPayload::write(0x40, &[Taint::untainted(0)]);
        u.transport(&mut p, &mut SimTime::ZERO.clone());
        assert_eq!(p.response(), TlmResponse::CommandError);
    }
}
