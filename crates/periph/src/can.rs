//! CAN controller and bus channel — the immobilizer's link to the engine
//! ECU.
//!
//! The model is frame-based: a [`CanChannel`] couples the SoC-side
//! [`CanController`] with a host-side [`CanHostEndpoint`] (the scripted
//! engine ECU of the case study). Transmission is clearance-checked at the
//! `"<name>.tx"` sink — secret data cannot leave on the CAN bus — and every
//! received byte is classified with the controller's input tag.

use std::collections::VecDeque;
use vpdift_sync::{shared, Shared};

use vpdift_core::{SharedEngine, Tag, Taint};
use vpdift_kernel::SimTime;
use vpdift_tlm::{GenericPayload, TlmCommand, TlmResponse, TlmTarget};

use crate::mmio::{get_word, put_word};
use crate::plic::IrqLine;

/// A CAN frame: identifier plus up to 8 tagged data bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CanFrame {
    /// Frame identifier.
    pub id: u32,
    /// Number of valid data bytes (0..=8).
    pub dlc: u8,
    /// Tagged payload.
    pub data: [Taint<u8>; 8],
}

impl CanFrame {
    /// Builds a frame from untagged bytes.
    ///
    /// # Panics
    /// Panics if `bytes.len() > 8`.
    pub fn new(id: u32, bytes: &[u8]) -> Self {
        assert!(bytes.len() <= 8, "CAN frames carry at most 8 bytes");
        let mut data = [Taint::untainted(0); 8];
        for (d, &b) in data.iter_mut().zip(bytes) {
            *d = Taint::untainted(b);
        }
        CanFrame { id, dlc: bytes.len() as u8, data }
    }

    /// The valid payload bytes (values only).
    pub fn bytes(&self) -> Vec<u8> {
        self.data[..self.dlc as usize].iter().map(|b| b.value()).collect()
    }
}

/// A line-level fault model for a CAN link: consulted for every frame
/// entering the wire in either direction. Implementations may mutate the
/// frame (bit corruption) and return `false` to drop it entirely.
pub trait CanLineFault: Send + Sync {
    /// `frame` is about to be put on the wire; `to_device` is `true` for
    /// host→VP traffic. Return `false` to lose the frame.
    fn on_frame(&mut self, frame: &mut CanFrame, to_device: bool) -> bool;
}

/// A line-fault model as shared with a [`CanChannel`].
pub type SharedCanLine = Shared<dyn CanLineFault>;

/// The two directions of a point-to-point CAN link.
#[derive(Default)]
struct ChannelState {
    to_host: VecDeque<CanFrame>,
    to_device: VecDeque<CanFrame>,
    line_fault: Option<SharedCanLine>,
}

impl core::fmt::Debug for ChannelState {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ChannelState")
            .field("to_host", &self.to_host)
            .field("to_device", &self.to_device)
            .field("line_fault", &self.line_fault.is_some())
            .finish()
    }
}

/// Applies the channel's line-fault model to `frame`; `true` = deliver.
/// The hook handle is cloned out first so the model may inspect the
/// channel without a double borrow.
fn apply_line_fault(state: &Shared<ChannelState>, frame: &mut CanFrame, to_device: bool) -> bool {
    let hook = state.borrow().line_fault.clone();
    match hook {
        Some(h) => h.borrow_mut().on_frame(frame, to_device),
        None => true,
    }
}

/// A shared CAN link between the VP's controller and a host endpoint.
#[derive(Debug, Clone, Default)]
pub struct CanChannel {
    state: Shared<ChannelState>,
}

impl CanChannel {
    /// Creates an empty link.
    pub fn new() -> Self {
        Self::default()
    }

    /// The host side of the link.
    pub fn host_endpoint(&self) -> CanHostEndpoint {
        CanHostEndpoint { state: Shared::clone(&self.state) }
    }

    /// Installs a line-level fault model (frame corruption/loss) on the
    /// link; both directions pass through it.
    pub fn set_line_fault(&self, fault: SharedCanLine) {
        self.state.borrow_mut().line_fault = Some(fault);
    }

    /// Removes the line-fault model; the wire is perfect again.
    pub fn clear_line_fault(&self) {
        self.state.borrow_mut().line_fault = None;
    }
}

/// Host-side access to the CAN link (the scripted remote ECU).
#[derive(Debug, Clone)]
pub struct CanHostEndpoint {
    state: Shared<ChannelState>,
}

impl CanHostEndpoint {
    /// Sends a frame towards the VP. Returns `true` when the frame made it
    /// onto the wire — an installed line-fault model may corrupt or drop
    /// it (`false`). On a fault-free link this never fails.
    pub fn send(&self, frame: CanFrame) -> bool {
        let mut frame = frame;
        if !apply_line_fault(&self.state, &mut frame, true) {
            return false;
        }
        self.state.borrow_mut().to_device.push_back(frame);
        true
    }

    /// Sends a frame with bounded retry: re-attempts a dropped frame up to
    /// `max_attempts` times in total, backing off by re-entering the
    /// (fault) line each attempt. Returns the number of attempts used when
    /// the frame was delivered, or `None` when every attempt was lost.
    ///
    /// The channel is untimed on the host side, so "backoff" here is
    /// attempt-bounded rather than timed — the graceful-degradation
    /// contract is that injected frame loss costs retries, never a hang.
    pub fn send_with_retry(&self, frame: CanFrame, max_attempts: u32) -> Option<u32> {
        (1..=max_attempts).find(|_| self.send(frame.clone()))
    }

    /// Installs a line-level fault model on the link — the host endpoint
    /// shares the channel state, so this is the same wire
    /// [`CanChannel::set_line_fault`] configures. Exists so harnesses that
    /// only hold the host side of a built SoC can still break the wire.
    pub fn set_line_fault(&self, fault: SharedCanLine) {
        self.state.borrow_mut().line_fault = Some(fault);
    }

    /// Removes the line-fault model; the wire is perfect again.
    pub fn clear_line_fault(&self) {
        self.state.borrow_mut().line_fault = None;
    }

    /// Receives the next frame transmitted by the VP, if any.
    pub fn recv(&self) -> Option<CanFrame> {
        self.state.borrow_mut().to_host.pop_front()
    }

    /// Frames waiting for the host.
    pub fn pending(&self) -> usize {
        self.state.borrow().to_host.len()
    }
}

/// Register map (word-aligned offsets).
pub mod regs {
    /// Write: transmit frame identifier.
    pub const TX_ID: u32 = 0x00;
    /// Write: transmit DLC (payload length 0..=8).
    pub const TX_DLC: u32 = 0x04;
    /// Write window: transmit payload bytes `TX_DATA .. TX_DATA+8`.
    pub const TX_DATA: u32 = 0x08;
    /// Write 1: send the staged frame (clearance-checked).
    pub const TX_GO: u32 = 0x10;
    /// Read: number of received frames waiting.
    pub const RX_AVAIL: u32 = 0x20;
    /// Read: identifier of the head frame.
    pub const RX_ID: u32 = 0x24;
    /// Read: DLC of the head frame.
    pub const RX_DLC: u32 = 0x28;
    /// Read window: payload of the head frame `RX_DATA .. RX_DATA+8`.
    pub const RX_DATA: u32 = 0x2C;
    /// Write 1: pop the head frame.
    pub const RX_POP: u32 = 0x34;
}

/// The SoC-side CAN controller.
#[derive(Debug)]
pub struct CanController {
    name: String,
    sink: String,
    engine: SharedEngine,
    input_tag: Tag,
    channel: CanChannel,
    irq: Option<IrqLine>,
    tx_id: u32,
    tx_dlc: u8,
    tx_data: [Taint<u8>; 8],
    frames_sent: u64,
    obs: vpdift_obs::ObsHandle,
}

impl CanController {
    /// Creates a controller named `name`: TX clearance is checked against
    /// the sink `"<name>.tx"`, and bytes received from the link are
    /// classified `input_tag`.
    pub fn new(
        name: &str,
        engine: SharedEngine,
        input_tag: Tag,
        channel: CanChannel,
        irq: Option<IrqLine>,
    ) -> Self {
        CanController {
            name: name.to_owned(),
            sink: format!("{name}.tx"),
            engine,
            input_tag,
            channel,
            irq,
            tx_id: 0,
            tx_dlc: 0,
            tx_data: [Taint::untainted(0); 8],
            frames_sent: 0,
            obs: vpdift_obs::ObsHandle::default(),
        }
    }

    /// Attaches an observability sink; RX-side classification is reported
    /// to it.
    pub fn set_obs(&mut self, obs: vpdift_obs::SharedObs) {
        self.obs.attach(obs);
    }

    /// Reports classification of data read from the RX side.
    fn obs_classify(&self, tag: Tag) {
        if self.obs.is_attached() && !tag.is_empty() {
            self.obs.emit(&vpdift_obs::ObsEvent::Classify {
                source: format!("{}.rx", self.name),
                tag,
                addr: None,
            });
        }
    }

    /// Wraps into the shared handle used by the SoC.
    pub fn into_shared(self) -> Shared<CanController> {
        shared(self)
    }

    /// Instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Frames transmitted successfully.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Delivers any host-sent frames' interrupt (poll from the SoC loop).
    pub fn poll_rx_irq(&self) {
        if let Some(irq) = &self.irq {
            if !self.channel.state.borrow().to_device.is_empty() {
                irq.raise();
            }
        }
    }

    fn head<R>(&self, f: impl FnOnce(Option<&CanFrame>) -> R) -> R {
        let st = self.channel.state.borrow();
        f(st.to_device.front())
    }
}

impl TlmTarget for CanController {
    fn transport(&mut self, p: &mut GenericPayload, _delay: &mut SimTime) {
        let addr = p.address();
        match p.command() {
            TlmCommand::Write => match addr {
                regs::TX_ID => {
                    self.tx_id = get_word(p).value();
                    p.set_response(TlmResponse::Ok);
                }
                regs::TX_DLC => {
                    self.tx_dlc = (get_word(p).value() & 0xF).min(8) as u8;
                    p.set_response(TlmResponse::Ok);
                }
                a if (regs::TX_DATA..regs::TX_DATA + 8).contains(&a) => {
                    let idx = (a - regs::TX_DATA) as usize;
                    let end = idx + p.len();
                    if end > 8 {
                        p.set_response(TlmResponse::BurstError);
                        return;
                    }
                    for (i, b) in p.data().iter().enumerate() {
                        self.tx_data[idx + i] = *b;
                    }
                    p.set_response(TlmResponse::Ok);
                }
                regs::TX_GO => {
                    // Clearance check on every payload byte (output).
                    let tag = self.tx_data[..self.tx_dlc as usize]
                        .iter()
                        .fold(Tag::EMPTY, |acc, b| acc.lub(b.tag()));
                    match self.engine.borrow_mut().check_output(&self.sink, tag, None) {
                        Ok(()) => {
                            let mut frame =
                                CanFrame { id: self.tx_id, dlc: self.tx_dlc, data: self.tx_data };
                            // The wire may corrupt or lose the frame; the
                            // controller has done its part either way.
                            if apply_line_fault(&self.channel.state, &mut frame, false) {
                                self.channel.state.borrow_mut().to_host.push_back(frame);
                            }
                            self.frames_sent += 1;
                            p.set_response(TlmResponse::Ok);
                        }
                        Err(v) => p.set_violation(v),
                    }
                }
                regs::RX_POP => {
                    self.channel.state.borrow_mut().to_device.pop_front();
                    p.set_response(TlmResponse::Ok);
                }
                _ => p.set_response(TlmResponse::CommandError),
            },
            TlmCommand::Read => match addr {
                regs::RX_AVAIL => {
                    let n = self.channel.state.borrow().to_device.len() as u32;
                    put_word(p, Taint::untainted(n));
                    p.set_response(TlmResponse::Ok);
                }
                regs::RX_ID => {
                    let id = self.head(|f| f.map_or(0, |f| f.id));
                    self.obs_classify(self.input_tag);
                    put_word(p, Taint::new(id, self.input_tag));
                    p.set_response(TlmResponse::Ok);
                }
                regs::RX_DLC => {
                    let dlc = self.head(|f| f.map_or(0, |f| f.dlc as u32));
                    self.obs_classify(self.input_tag);
                    put_word(p, Taint::new(dlc, self.input_tag));
                    p.set_response(TlmResponse::Ok);
                }
                a if (regs::RX_DATA..regs::RX_DATA + 8).contains(&a) => {
                    let idx = (a - regs::RX_DATA) as usize;
                    if idx + p.len() > 8 {
                        p.set_response(TlmResponse::BurstError);
                        return;
                    }
                    let input_tag = self.input_tag;
                    let bytes: Vec<Taint<u8>> = self.head(|f| {
                        (0..p.len())
                            .map(|i| match f {
                                // Incoming frames are re-classified at the
                                // input boundary: data from the bus is only
                                // as trustworthy as the policy says.
                                Some(f) => Taint::new(
                                    f.data[idx + i].value(),
                                    f.data[idx + i].tag().lub(input_tag),
                                ),
                                None => Taint::untainted(0),
                            })
                            .collect()
                    });
                    let read_tag = bytes.iter().fold(Tag::EMPTY, |t, b| t.lub(b.tag()));
                    self.obs_classify(read_tag);
                    p.data_mut().copy_from_slice(&bytes);
                    p.set_response(TlmResponse::Ok);
                }
                _ => p.set_response(TlmResponse::CommandError),
            },
            TlmCommand::Ignore => p.set_response(TlmResponse::Ok),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdift_core::{DiftEngine, SecurityPolicy, ViolationKind};

    const SECRET: Tag = Tag::from_bits(0b01);
    const UNTRUSTED: Tag = Tag::from_bits(0b10);

    fn controller() -> (CanController, CanHostEndpoint) {
        let policy = SecurityPolicy::builder("t").sink("can0.tx", UNTRUSTED).build();
        let engine = DiftEngine::new(policy).into_shared();
        let channel = CanChannel::new();
        let host = channel.host_endpoint();
        (CanController::new("can0", engine, UNTRUSTED, channel, None), host)
    }

    fn wr(c: &mut CanController, reg: u32, v: Taint<u32>) -> GenericPayload {
        let mut p = GenericPayload::write_word(reg, v);
        c.transport(&mut p, &mut SimTime::ZERO.clone());
        p
    }

    fn rd(c: &mut CanController, reg: u32) -> Taint<u32> {
        let mut p = GenericPayload::read(reg, 4);
        c.transport(&mut p, &mut SimTime::ZERO.clone());
        assert!(p.is_ok(), "read of {reg:#x}");
        p.data_word()
    }

    #[test]
    fn transmit_reaches_host() {
        let (mut c, host) = controller();
        wr(&mut c, regs::TX_ID, Taint::untainted(0x123));
        wr(&mut c, regs::TX_DLC, Taint::untainted(2));
        let mut p =
            GenericPayload::write(regs::TX_DATA, &[Taint::untainted(0xAA), Taint::untainted(0xBB)]);
        c.transport(&mut p, &mut SimTime::ZERO.clone());
        assert!(wr(&mut c, regs::TX_GO, Taint::untainted(1)).is_ok());
        let f = host.recv().expect("frame delivered");
        assert_eq!(f.id, 0x123);
        assert_eq!(f.bytes(), vec![0xAA, 0xBB]);
        assert_eq!(c.frames_sent(), 1);
        assert_eq!(host.pending(), 0);
    }

    #[test]
    fn secret_payload_blocked_at_tx() {
        let (mut c, host) = controller();
        wr(&mut c, regs::TX_DLC, Taint::untainted(1));
        let mut p = GenericPayload::write(regs::TX_DATA, &[Taint::new(0x42, SECRET)]);
        c.transport(&mut p, &mut SimTime::ZERO.clone());
        let mut go = wr(&mut c, regs::TX_GO, Taint::untainted(1));
        let v = go.take_violation().expect("violation");
        assert_eq!(v.kind, ViolationKind::Output { sink: "can0.tx".into() });
        assert!(host.recv().is_none(), "secret frame never left");
    }

    #[test]
    fn receive_classifies_input() {
        let (mut c, host) = controller();
        host.send(CanFrame::new(0x7FF, &[1, 2, 3, 4]));
        assert_eq!(rd(&mut c, regs::RX_AVAIL).value(), 1);
        assert_eq!(rd(&mut c, regs::RX_ID).value(), 0x7FF);
        assert_eq!(rd(&mut c, regs::RX_DLC).value(), 4);
        let mut p = GenericPayload::read(regs::RX_DATA, 4);
        c.transport(&mut p, &mut SimTime::ZERO.clone());
        assert_eq!(p.data_values(), vec![1, 2, 3, 4]);
        assert!(p.data().iter().all(|b| b.tag() == UNTRUSTED));
        wr(&mut c, regs::RX_POP, Taint::untainted(1));
        assert_eq!(rd(&mut c, regs::RX_AVAIL).value(), 0);
    }

    #[test]
    fn rx_irq_polling() {
        let plic = crate::plic::Plic::new().into_shared();
        let policy = SecurityPolicy::builder("t").build();
        let channel = CanChannel::new();
        let host = channel.host_endpoint();
        let c = CanController::new(
            "can0",
            DiftEngine::new(policy).into_shared(),
            Tag::EMPTY,
            channel,
            Some(IrqLine::new(plic.clone(), 3)),
        );
        c.poll_rx_irq();
        assert_eq!(plic.borrow().pending(), 0);
        host.send(CanFrame::new(1, &[0]));
        c.poll_rx_irq();
        assert_eq!(plic.borrow().pending(), 1 << 3);
    }

    #[test]
    fn empty_rx_reads_zero() {
        let (mut c, _host) = controller();
        assert_eq!(rd(&mut c, regs::RX_ID).value(), 0);
        assert_eq!(rd(&mut c, regs::RX_DLC).value(), 0);
        assert_eq!(c.name(), "can0");
    }

    /// Drops the first `drop_n` frames in each direction, then corrupts
    /// bit 0 of byte 0 on everything that passes.
    struct LossyLine {
        drop_n: u32,
        corrupt: bool,
        seen: u32,
    }

    impl CanLineFault for LossyLine {
        fn on_frame(&mut self, frame: &mut CanFrame, _to_device: bool) -> bool {
            self.seen += 1;
            if self.seen <= self.drop_n {
                return false;
            }
            if self.corrupt {
                frame.data[0] = frame.data[0].map(|v| v ^ 1);
            }
            true
        }
    }

    #[test]
    fn line_fault_drops_and_send_reports_it() {
        let channel = CanChannel::new();
        let host = channel.host_endpoint();
        channel.set_line_fault(shared(LossyLine { drop_n: 2, corrupt: false, seen: 0 }));
        assert!(!host.send(CanFrame::new(1, &[0xAA])), "first frame lost");
        assert!(!host.send(CanFrame::new(1, &[0xAA])), "second frame lost");
        assert!(host.send(CanFrame::new(1, &[0xAA])));
        channel.clear_line_fault();
        assert!(host.send(CanFrame::new(2, &[0xBB])), "perfect wire again");
    }

    #[test]
    fn send_with_retry_survives_bounded_loss() {
        let channel = CanChannel::new();
        let host = channel.host_endpoint();
        channel.set_line_fault(shared(LossyLine { drop_n: 2, corrupt: false, seen: 0 }));
        assert_eq!(host.send_with_retry(CanFrame::new(7, &[1]), 5), Some(3), "third attempt lands");
        // Total loss within the attempt budget is reported, not retried forever.
        channel.set_line_fault(shared(LossyLine { drop_n: 100, corrupt: false, seen: 0 }));
        assert_eq!(host.send_with_retry(CanFrame::new(7, &[1]), 4), None);
    }

    #[test]
    fn line_fault_corrupts_device_tx_but_send_still_counts() {
        let (mut c, host) = controller();
        c.channel.set_line_fault(shared(LossyLine { drop_n: 0, corrupt: true, seen: 0 }));
        wr(&mut c, regs::TX_DLC, Taint::untainted(1));
        let mut p = GenericPayload::write(regs::TX_DATA, &[Taint::untainted(0xAA)]);
        c.transport(&mut p, &mut SimTime::ZERO.clone());
        assert!(wr(&mut c, regs::TX_GO, Taint::untainted(1)).is_ok());
        assert_eq!(c.frames_sent(), 1);
        let f = host.recv().expect("corrupted, not lost");
        assert_eq!(f.bytes(), vec![0xAB], "bit 0 flipped on the wire");
    }

    #[test]
    fn line_loss_is_invisible_to_the_device() {
        let (mut c, host) = controller();
        c.channel.set_line_fault(shared(LossyLine { drop_n: 1, corrupt: false, seen: 0 }));
        wr(&mut c, regs::TX_DLC, Taint::untainted(1));
        let mut p = GenericPayload::write(regs::TX_DATA, &[Taint::untainted(0x42)]);
        c.transport(&mut p, &mut SimTime::ZERO.clone());
        assert!(wr(&mut c, regs::TX_GO, Taint::untainted(1)).is_ok(), "TX_GO still succeeds");
        assert_eq!(c.frames_sent(), 1, "the controller believes it transmitted");
        assert!(host.recv().is_none(), "but the wire ate the frame");
    }
}
