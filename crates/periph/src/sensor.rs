//! The sensor peripheral of the paper's Fig. 4, transliterated from
//! SystemC.
//!
//! A 64-byte memory-mapped data frame is refilled 40 times per simulated
//! second by a kernel thread with random printable data, classified by the
//! run-time-configurable `data_tag` register; each refill raises the
//! sensor's interrupt. Reads return the tagged frame bytes through the TLM
//! data lane, exactly like the paper's `Taint<uint8_t>` pointer cast.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vpdift_core::{Tag, Taint};
use vpdift_kernel::{Kernel, Periodic, SimTime};
use vpdift_sync::{shared, Shared};
use vpdift_tlm::{GenericPayload, TlmCommand, TlmResponse, TlmTarget};

use crate::mmio::{get_word, put_word};
use crate::plic::IrqLine;

/// Size of the memory-mapped data frame.
pub const FRAME_SIZE: usize = 64;

/// Offset of the `data_tag` configuration register (right after the
/// frame).
pub const DATA_TAG_REG: u32 = FRAME_SIZE as u32;

/// Refill period: 25 ms → 40 frames per second (Fig. 4, line 16).
pub const PERIOD: SimTime = SimTime::from_ms(25);

/// The sensor model.
#[derive(Debug)]
pub struct Sensor {
    data_frame: [Taint<u8>; FRAME_SIZE],
    data_tag: Tag,
    irq: Option<IrqLine>,
    rng: StdRng,
    frames_generated: u64,
    stuck_at: Option<u8>,
    obs: vpdift_obs::ObsHandle,
}

impl Sensor {
    /// Creates a sensor generating data classified `data_tag`, raising
    /// `irq` (if any) on every refill. `seed` makes runs reproducible.
    pub fn new(data_tag: Tag, irq: Option<IrqLine>, seed: u64) -> Self {
        Sensor {
            data_frame: [Taint::untainted(0); FRAME_SIZE],
            data_tag,
            irq,
            rng: StdRng::seed_from_u64(seed),
            frames_generated: 0,
            stuck_at: None,
            obs: vpdift_obs::ObsHandle::default(),
        }
    }

    /// Fault injection: `Some(v)` pins every subsequently generated frame
    /// byte to `v` (a stuck-at sensor); `None` restores random data.
    /// Stuck frames are still classified with the configured `data_tag` —
    /// a broken transducer does not declassify its channel.
    pub fn set_stuck(&mut self, value: Option<u8>) {
        self.stuck_at = value;
    }

    /// Attaches an observability sink; each generated frame's
    /// classification is reported to it.
    pub fn set_obs(&mut self, obs: vpdift_obs::SharedObs) {
        self.obs.attach(obs);
    }

    /// Wraps into the shared handle used by the SoC.
    pub fn into_shared(self) -> Shared<Sensor> {
        shared(self)
    }

    /// Registers the periodic generation thread (Fig. 4's `run`) with the
    /// simulation kernel.
    pub fn spawn(this: &Shared<Sensor>, kernel: &mut Kernel) {
        let me = Shared::clone(this);
        kernel.spawn(
            "sensor.run",
            Periodic::new(PERIOD, move |_k| {
                me.borrow_mut().generate_frame();
            }),
        );
    }

    /// Fills the frame with fresh random printable data of the configured
    /// security class and raises the interrupt (Fig. 4, lines 17-24).
    pub fn generate_frame(&mut self) {
        let tag = self.data_tag;
        for n in self.data_frame.iter_mut() {
            let v = match self.stuck_at {
                Some(v) => v,
                None => self.rng.gen_range(0..96) + 128,
            };
            *n = Taint::new(v, tag);
        }
        if self.obs.is_attached() && !tag.is_empty() {
            self.obs.emit(&vpdift_obs::ObsEvent::Classify {
                source: "sensor.frame".into(),
                tag,
                addr: None,
            });
        }
        self.frames_generated += 1;
        if let Some(irq) = &self.irq {
            irq.raise();
        }
    }

    /// The currently configured generation tag.
    pub fn data_tag(&self) -> Tag {
        self.data_tag
    }

    /// Reconfigures the generation tag (host/test use; software uses the
    /// MMIO register).
    pub fn set_data_tag(&mut self, tag: Tag) {
        self.data_tag = tag;
    }

    /// Number of frames generated so far.
    pub fn frames_generated(&self) -> u64 {
        self.frames_generated
    }

    /// Direct frame access (diagnostics).
    pub fn frame(&self) -> &[Taint<u8>; FRAME_SIZE] {
        &self.data_frame
    }
}

impl TlmTarget for Sensor {
    fn transport(&mut self, p: &mut GenericPayload, _delay: &mut SimTime) {
        let addr = p.address();
        if (addr as usize) < FRAME_SIZE {
            // Frame window (reads only; the frame is sensor-driven).
            let end = addr as usize + p.len();
            if end > FRAME_SIZE {
                p.set_response(TlmResponse::BurstError);
                return;
            }
            match p.command() {
                TlmCommand::Read => {
                    let base = addr as usize;
                    for (i, b) in p.data_mut().iter_mut().enumerate() {
                        *b = self.data_frame[base + i];
                    }
                    p.set_response(TlmResponse::Ok);
                }
                _ => p.set_response(TlmResponse::CommandError),
            }
        } else if addr == DATA_TAG_REG {
            match p.command() {
                TlmCommand::Read => {
                    // The tag register itself is public configuration.
                    put_word(p, Taint::untainted(self.data_tag.bits()));
                    p.set_response(TlmResponse::Ok);
                }
                TlmCommand::Write => {
                    self.data_tag = Tag::from_bits(get_word(p).value());
                    p.set_response(TlmResponse::Ok);
                }
                TlmCommand::Ignore => p.set_response(TlmResponse::Ok),
            }
        } else {
            p.set_response(TlmResponse::AddressError);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vpdift_kernel::Kernel;

    const LC: Tag = Tag::EMPTY;
    const HC: Tag = Tag::from_bits(1);

    #[test]
    fn generated_data_carries_configured_tag() {
        let mut s = Sensor::new(HC, None, 42);
        s.generate_frame();
        assert_eq!(s.frames_generated(), 1);
        assert!(s.frame().iter().all(|b| b.tag() == HC));
        assert!(s.frame().iter().all(|b| b.value() >= 128), "printable range per Fig. 4");
    }

    #[test]
    fn frame_reads_are_tagged_through_tlm() {
        let mut s = Sensor::new(HC, None, 1);
        s.generate_frame();
        let mut p = GenericPayload::read(0, 8);
        s.transport(&mut p, &mut SimTime::ZERO.clone());
        assert!(p.is_ok());
        assert!(p.data().iter().all(|b| b.tag() == HC));
    }

    #[test]
    fn data_tag_register_reconfigures_classification() {
        let mut s = Sensor::new(HC, None, 1);
        let mut w = GenericPayload::write_word(DATA_TAG_REG, Taint::untainted(LC.bits()));
        s.transport(&mut w, &mut SimTime::ZERO.clone());
        assert!(w.is_ok());
        assert_eq!(s.data_tag(), LC);
        s.generate_frame();
        assert!(s.frame().iter().all(|b| b.tag() == LC));
        let mut r = GenericPayload::read(DATA_TAG_REG, 4);
        s.transport(&mut r, &mut SimTime::ZERO.clone());
        assert_eq!(r.data_word::<u32>().value(), LC.bits());
    }

    #[test]
    fn kernel_thread_runs_at_40_hz_and_raises_irq() {
        let mut kernel = Kernel::new();
        let plic = crate::plic::Plic::new().into_shared();
        let sensor = Sensor::new(HC, Some(IrqLine::new(plic.clone(), 2)), 7).into_shared();
        Sensor::spawn(&sensor, &mut kernel);
        kernel.run_until(SimTime::from_s(1));
        assert_eq!(sensor.borrow().frames_generated(), 40);
        assert_eq!(plic.borrow().pending(), 1 << 2);
    }

    #[test]
    fn writes_to_frame_rejected() {
        let mut s = Sensor::new(HC, None, 1);
        let mut p = GenericPayload::write(0, &[Taint::untainted(1)]);
        s.transport(&mut p, &mut SimTime::ZERO.clone());
        assert_eq!(p.response(), TlmResponse::CommandError);
        // Straddling the frame boundary is a burst error.
        let mut p = GenericPayload::read(60, 8);
        s.transport(&mut p, &mut SimTime::ZERO.clone());
        assert_eq!(p.response(), TlmResponse::BurstError);
    }

    #[test]
    fn stuck_sensor_pins_values_but_keeps_classification() {
        let mut s = Sensor::new(HC, None, 3);
        s.set_stuck(Some(0x55));
        s.generate_frame();
        assert!(s.frame().iter().all(|b| b.value() == 0x55));
        assert!(s.frame().iter().all(|b| b.tag() == HC), "stuck data stays classified");
        s.set_stuck(None);
        s.generate_frame();
        assert!(s.frame().iter().any(|b| b.value() != 0x55));
    }

    #[test]
    fn deterministic_with_same_seed() {
        let mut a = Sensor::new(LC, None, 99);
        let mut b = Sensor::new(LC, None, 99);
        a.generate_frame();
        b.generate_frame();
        assert_eq!(
            a.frame().iter().map(|x| x.value()).collect::<Vec<_>>(),
            b.frame().iter().map(|x| x.value()).collect::<Vec<_>>()
        );
    }
}
