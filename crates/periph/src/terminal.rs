//! Terminal / serial-console *input* device.
//!
//! This is the attacker-facing input port of the threat model: every byte
//! the host test bench feeds in is classified with the device's input tag
//! (typically low-integrity `LI`), so injected data is tainted from the
//! moment it enters the system.

use std::collections::VecDeque;
use vpdift_sync::{shared, Shared};

use vpdift_core::{Tag, Taint};
use vpdift_kernel::SimTime;
use vpdift_obs::{ObsEvent, SharedObs};
use vpdift_tlm::{GenericPayload, TlmCommand, TlmResponse, TlmTarget};

/// Register map (word-aligned offsets).
pub mod regs {
    /// Read: pop one received byte (bit 31 set when the FIFO was empty).
    pub const RXDATA: u32 = 0x0;
    /// Read: number of buffered bytes.
    pub const RXAVAIL: u32 = 0x4;
}

/// Sentinel value returned by an `RXDATA` read on an empty FIFO.
pub const RX_EMPTY: u32 = 0x8000_0000;

/// The console-input model.
pub struct Terminal {
    name: String,
    input_tag: Tag,
    fifo: VecDeque<u8>,
    obs: Option<SharedObs>,
}

impl std::fmt::Debug for Terminal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Terminal")
            .field("name", &self.name)
            .field("input_tag", &self.input_tag)
            .field("buffered", &self.fifo.len())
            .finish()
    }
}

impl Terminal {
    /// Creates a terminal whose incoming bytes are classified `input_tag`
    /// (wire it from `policy.source_tag("<name>.rx")`).
    pub fn new(name: &str, input_tag: Tag) -> Self {
        Terminal { name: name.to_owned(), input_tag, fifo: VecDeque::new(), obs: None }
    }

    /// Attaches an observability sink; classification of incoming bytes is
    /// reported to it.
    pub fn set_obs(&mut self, obs: SharedObs) {
        self.obs = Some(obs);
    }

    /// Wraps into the shared handle used by the SoC.
    pub fn into_shared(self) -> Shared<Terminal> {
        shared(self)
    }

    /// Instance name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The classification applied to incoming bytes.
    pub fn input_tag(&self) -> Tag {
        self.input_tag
    }

    /// Host-side: feeds bytes into the receive FIFO (the attacker's
    /// keyboard).
    pub fn feed(&mut self, bytes: &[u8]) {
        self.fifo.extend(bytes);
    }

    /// Buffered byte count.
    pub fn available(&self) -> usize {
        self.fifo.len()
    }
}

use crate::mmio::put_word as write_word;

impl TlmTarget for Terminal {
    fn transport(&mut self, p: &mut GenericPayload, _delay: &mut SimTime) {
        match (p.command(), p.address()) {
            (TlmCommand::Read, regs::RXDATA) => {
                let word = match self.fifo.pop_front() {
                    Some(b) => {
                        if let (Some(obs), false) = (&self.obs, self.input_tag.is_empty()) {
                            obs.borrow_mut().dyn_event(&ObsEvent::Classify {
                                source: format!("{}.rx", self.name),
                                tag: self.input_tag,
                                addr: None,
                            });
                        }
                        Taint::new(b as u32, self.input_tag)
                    }
                    None => Taint::untainted(RX_EMPTY),
                };
                write_word(p, word);
                p.set_response(TlmResponse::Ok);
            }
            (TlmCommand::Read, regs::RXAVAIL) => {
                write_word(p, Taint::untainted(self.fifo.len() as u32));
                p.set_response(TlmResponse::Ok);
            }
            _ => p.set_response(TlmResponse::CommandError),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LI: Tag = Tag::from_bits(0b10);

    fn read_reg(t: &mut Terminal, reg: u32) -> Taint<u32> {
        let mut p = GenericPayload::read(reg, 4);
        t.transport(&mut p, &mut SimTime::ZERO.clone());
        assert!(p.is_ok());
        p.data_word()
    }

    #[test]
    fn fed_bytes_come_back_classified() {
        let mut t = Terminal::new("terminal", LI);
        t.feed(b"AB");
        assert_eq!(t.available(), 2);
        assert_eq!(read_reg(&mut t, regs::RXAVAIL).value(), 2);
        let a = read_reg(&mut t, regs::RXDATA);
        assert_eq!(a.value(), b'A' as u32);
        assert_eq!(a.tag(), LI, "input data is classified at the source");
        let b = read_reg(&mut t, regs::RXDATA);
        assert_eq!(b.value(), b'B' as u32);
        assert_eq!(t.available(), 0);
    }

    #[test]
    fn empty_fifo_returns_sentinel_untainted() {
        let mut t = Terminal::new("terminal", LI);
        let w = read_reg(&mut t, regs::RXDATA);
        assert_eq!(w.value(), RX_EMPTY);
        assert_eq!(w.tag(), Tag::EMPTY);
        assert_eq!(t.input_tag(), LI);
        assert_eq!(t.name(), "terminal");
    }

    #[test]
    fn writes_rejected() {
        let mut t = Terminal::new("terminal", LI);
        let mut p = GenericPayload::write(regs::RXDATA, &[Taint::untainted(0)]);
        t.transport(&mut p, &mut SimTime::ZERO.clone());
        assert_eq!(p.response(), TlmResponse::CommandError);
    }
}
