//! Additional kernel scheduling tests: ordering guarantees, interleaved
//! processes and events, and stats accounting.

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex};

use vpdift_kernel::{FnProcess, Kernel, Next, Periodic, SimTime};

#[test]
fn two_periodic_processes_interleave_deterministically() {
    let mut k = Kernel::new();
    let log = Arc::new(Mutex::new(Vec::new()));
    let l1 = log.clone();
    let l2 = log.clone();
    k.spawn(
        "a",
        Periodic::new(SimTime::from_ns(30), move |k| {
            l1.lock().unwrap().push(('a', k.now().as_ns()));
        }),
    );
    k.spawn(
        "b",
        Periodic::new(SimTime::from_ns(20), move |k| {
            l2.lock().unwrap().push(('b', k.now().as_ns()));
        }),
    );
    k.run_until(SimTime::from_ns(60));
    assert_eq!(
        *log.lock().unwrap(),
        vec![('b', 20), ('a', 30), ('b', 40), ('a', 60), ('b', 60)],
        "scheduling order (a re-armed at t=30, b at t=40) breaks the tie at t=60"
    );
}

#[test]
fn event_multicast_wakes_all_waiters_in_subscription_order() {
    let mut k = Kernel::new();
    let ev = k.create_event();
    let log = Arc::new(Mutex::new(Vec::new()));
    for i in 0..3 {
        let l = log.clone();
        let mut first = true;
        k.spawn(
            "waiter",
            FnProcess::new(move |_k, _id| {
                if !first {
                    l.lock().unwrap().push(i);
                    return Next::Stop;
                }
                first = false;
                Next::WaitEvent(ev)
            }),
        );
    }
    k.notify(ev, SimTime::from_ns(5));
    k.run_until(SimTime::from_ns(10));
    assert_eq!(*log.lock().unwrap(), vec![0, 1, 2]);
}

#[test]
fn notify_without_waiters_is_lost() {
    // SystemC semantics: events are not queues; un-awaited notifications
    // vanish.
    let mut k = Kernel::new();
    let ev = k.create_event();
    k.notify(ev, SimTime::from_ns(1));
    k.run_until(SimTime::from_ns(2));
    let woke = Arc::new(AtomicBool::new(false));
    let w = woke.clone();
    let mut first = true;
    k.spawn(
        "late",
        FnProcess::new(move |_k, _id| {
            if !first {
                w.store(true, Ordering::Relaxed);
                return Next::Stop;
            }
            first = false;
            Next::WaitEvent(ev)
        }),
    );
    k.run_until(SimTime::from_ns(10));
    assert!(!woke.load(Ordering::Relaxed), "missed notification must not be replayed");
}

#[test]
fn run_for_is_relative() {
    let mut k = Kernel::new();
    k.run_for(SimTime::from_ns(10));
    assert_eq!(k.now(), SimTime::from_ns(10));
    k.run_for(SimTime::from_ns(5));
    assert_eq!(k.now(), SimTime::from_ns(15));
}

#[test]
fn stats_count_work() {
    let mut k = Kernel::new();
    for i in 1..=3u64 {
        k.schedule_in(SimTime::from_ns(i), |_| {});
    }
    // Two actions at the same timestamp.
    k.schedule_in(SimTime::from_ns(2), |_| {});
    k.run_to_completion();
    let stats = k.stats();
    assert_eq!(stats.actions, 4);
    assert_eq!(stats.timestamps, 3);
    assert!(stats.delta_cycles >= 3);
}

#[test]
fn process_chain_via_events() {
    // A ping-pong of two processes through two events, bounded by a turn
    // counter — exercises re-arming and cross-wakeups.
    let mut k = Kernel::new();
    let ping = k.create_event();
    let pong = k.create_event();
    let turns = Arc::new(AtomicU32::new(0));

    let t1 = turns.clone();
    let mut first1 = true;
    k.spawn(
        "ping",
        FnProcess::new(move |k, _id| {
            if !first1 {
                if t1.fetch_add(1, Ordering::Relaxed) + 1 >= 6 {
                    return Next::Stop;
                }
                k.notify(pong, SimTime::from_ns(1));
            } else {
                first1 = false;
                k.notify(pong, SimTime::from_ns(1));
            }
            Next::WaitEvent(ping)
        }),
    );
    let mut first2 = true;
    k.spawn(
        "pong",
        FnProcess::new(move |k, _id| {
            if first2 {
                first2 = false;
            } else {
                k.notify(ping, SimTime::from_ns(1));
            }
            Next::WaitEvent(pong)
        }),
    );
    k.run_until(SimTime::from_us(1));
    let t = turns.load(Ordering::Relaxed);
    assert!(t >= 6, "ping-pong progressed: {t}");
}
