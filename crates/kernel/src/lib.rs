//! # vpdift-kernel — discrete-event simulation kernel
//!
//! A compact discrete-event kernel (single-threaded execution, `Send`
//! ownership) standing in for the
//! IEEE-1666 SystemC simulation kernel used by the paper's virtual
//! prototype. It provides the subset of SystemC semantics the VP model
//! relies on:
//!
//! * a simulated clock ([`SimTime`], picosecond resolution),
//! * timed notifications and one-shot scheduled closures,
//! * *delta cycles* — zero-delay notifications execute at the same
//!   timestamp but in a later evaluation round,
//! * cooperative [`Process`]es (`SC_THREAD` substitutes) that wait for
//!   durations or events, including the [`Periodic`] helper used by
//!   peripheral models such as the paper's Fig. 4 sensor.
//!
//! ```
//! use vpdift_kernel::{Kernel, Periodic, SimTime};
//! use std::sync::atomic::{AtomicU32, Ordering};
//! use std::sync::Arc;
//!
//! let mut kernel = Kernel::new();
//! let frames = Arc::new(AtomicU32::new(0));
//! let f = frames.clone();
//! // A 40 Hz sensor thread, like the paper's SimpleSensor::run().
//! kernel.spawn("sensor", Periodic::new(SimTime::from_ms(25), move |_k| {
//!     f.fetch_add(1, Ordering::Relaxed);
//! }));
//! kernel.run_until(SimTime::from_s(1));
//! assert_eq!(frames.load(Ordering::Relaxed), 40);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod process;
mod scheduler;
mod time;

pub use process::{FnProcess, Next, Periodic, Process};
pub use scheduler::{EventId, Kernel, KernelStats, ProcessId};
pub use time::SimTime;
