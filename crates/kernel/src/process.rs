//! Cooperative simulation processes — the `SC_THREAD` substitute.
//!
//! SystemC threads block inside `wait(...)`; Rust has no built-in stackful
//! coroutines, so a process here is a state machine: the kernel calls
//! [`Process::resume`], the process performs one activation and *returns*
//! what it wants to wait for next. Periodic peripheral threads (such as the
//! paper's Fig. 4 sensor) map naturally onto this shape; helpers below cover
//! the common cases.

use crate::scheduler::{EventId, Kernel, ProcessId};
use crate::time::SimTime;

/// What a process wants to happen after an activation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Next {
    /// Resume again after this duration (a `wait(time)`).
    WaitFor(SimTime),
    /// Resume on the next notification of this event (a `wait(event)`).
    WaitEvent(EventId),
    /// Never resume again.
    Stop,
}

/// A cooperative simulation process.
///
/// Implementors receive mutable access to the [`Kernel`] so they can notify
/// events or schedule follow-up work during an activation. Processes are
/// `Send`: the kernel (and the whole VP owning it) migrates between fleet
/// worker threads as a unit.
pub trait Process: Send + Sync {
    /// Performs one activation and reports what to wait for next.
    fn resume(&mut self, kernel: &mut Kernel, id: ProcessId) -> Next;
}

/// A process built from a closure; each call is one activation.
///
/// ```
/// use vpdift_kernel::{Kernel, SimTime, FnProcess, Next};
/// let mut k = Kernel::new();
/// let mut n = 0;
/// k.spawn("three-times", FnProcess::new(move |_k, _id| {
///     n += 1;
///     if n < 3 { Next::WaitFor(SimTime::from_ns(10)) } else { Next::Stop }
/// }));
/// k.run_to_completion();
/// assert_eq!(k.now(), SimTime::from_ns(20));
/// ```
pub struct FnProcess<F> {
    f: F,
}

impl<F> FnProcess<F>
where
    F: FnMut(&mut Kernel, ProcessId) -> Next + Send + Sync,
{
    /// Wraps a closure as a [`Process`].
    pub fn new(f: F) -> Self {
        FnProcess { f }
    }
}

impl<F> Process for FnProcess<F>
where
    F: FnMut(&mut Kernel, ProcessId) -> Next + Send + Sync,
{
    fn resume(&mut self, kernel: &mut Kernel, id: ProcessId) -> Next {
        (self.f)(kernel, id)
    }
}

/// A strictly periodic process: the body runs every `period`, starting one
/// period after elaboration (the initial delta-cycle activation only arms
/// the timer, it does not run the body — matching a SystemC thread whose
/// loop begins with `wait(period)`).
pub struct Periodic<F> {
    period: SimTime,
    armed: bool,
    body: F,
}

impl<F> Periodic<F>
where
    F: FnMut(&mut Kernel) + Send + Sync,
{
    /// Creates a periodic process with the given period.
    ///
    /// # Panics
    /// Panics if `period` is zero (that would be a delta-cycle livelock).
    pub fn new(period: SimTime, body: F) -> Self {
        assert!(!period.is_zero(), "periodic process period must be non-zero");
        Periodic { period, armed: false, body }
    }
}

impl<F> Process for Periodic<F>
where
    F: FnMut(&mut Kernel) + Send + Sync,
{
    fn resume(&mut self, kernel: &mut Kernel, _id: ProcessId) -> Next {
        if self.armed {
            (self.body)(kernel);
        }
        self.armed = true;
        Next::WaitFor(self.period)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex};

    #[test]
    fn fn_process_runs_and_stops() {
        let mut k = Kernel::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        let l = log.clone();
        let mut count = 0;
        k.spawn(
            "counter",
            FnProcess::new(move |k, _| {
                count += 1;
                l.lock().unwrap().push((count, k.now()));
                if count < 2 {
                    Next::WaitFor(SimTime::from_ns(3))
                } else {
                    Next::Stop
                }
            }),
        );
        k.run_to_completion();
        assert_eq!(*log.lock().unwrap(), vec![(1, SimTime::ZERO), (2, SimTime::from_ns(3))]);
    }

    #[test]
    fn periodic_skips_body_at_elaboration() {
        let mut k = Kernel::new();
        let times = Arc::new(Mutex::new(Vec::new()));
        let t = times.clone();
        k.spawn(
            "tick",
            Periodic::new(SimTime::from_ns(10), move |k| t.lock().unwrap().push(k.now())),
        );
        k.run_until(SimTime::from_ns(35));
        assert_eq!(
            *times.lock().unwrap(),
            vec![SimTime::from_ns(10), SimTime::from_ns(20), SimTime::from_ns(30)]
        );
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn periodic_rejects_zero_period() {
        let _ = Periodic::new(SimTime::ZERO, |_| {});
    }
}
