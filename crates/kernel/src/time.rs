//! Simulation time, modeled after `sc_core::sc_time`.
//!
//! Time is stored as an integer number of **picoseconds**, which matches the
//! default SystemC resolution closely enough for transaction-level models
//! while keeping arithmetic exact. A `u64` picosecond counter covers roughly
//! 213 days of simulated time — far beyond any VP session.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or duration of) simulated time, in picoseconds.
///
/// ```
/// use vpdift_kernel::SimTime;
/// let t = SimTime::from_ms(25);
/// assert_eq!(t.as_ns(), 25_000_000);
/// assert_eq!(t + SimTime::from_ms(5), SimTime::from_ms(30));
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The zero duration / simulation start.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time; used as "run forever" bound.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }
    /// Creates a time from nanoseconds (saturating at the end of time).
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns.saturating_mul(1_000))
    }
    /// Creates a time from microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us.saturating_mul(1_000_000))
    }
    /// Creates a time from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000_000_000))
    }
    /// Creates a time from seconds.
    pub const fn from_s(s: u64) -> Self {
        SimTime(s.saturating_mul(1_000_000_000_000))
    }

    /// Raw picosecond count.
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Whole nanoseconds (truncating).
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }
    /// Whole microseconds (truncating).
    pub const fn as_us(self) -> u64 {
        self.0 / 1_000_000
    }
    /// Whole milliseconds (truncating).
    pub const fn as_ms(self) -> u64 {
        self.0 / 1_000_000_000
    }
    /// Fractional seconds, for reporting.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// `true` iff this is [`SimTime::ZERO`].
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition, used by schedulers to avoid wrapping at the
    /// end-of-time sentinel.
    #[must_use]
    pub const fn saturating_add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }

    /// Checked subtraction; `None` when `rhs > self`.
    #[must_use]
    pub const fn checked_sub(self, rhs: SimTime) -> Option<SimTime> {
        match self.0.checked_sub(rhs.0) {
            Some(v) => Some(SimTime(v)),
            None => None,
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0 * rhs)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({self})")
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == u64::MAX {
            return write!(f, "t_max");
        }
        if ps.is_multiple_of(1_000_000_000_000) {
            write!(f, "{} s", ps / 1_000_000_000_000)
        } else if ps.is_multiple_of(1_000_000_000) {
            write!(f, "{} ms", ps / 1_000_000_000)
        } else if ps.is_multiple_of(1_000_000) {
            write!(f, "{} us", ps / 1_000_000)
        } else if ps.is_multiple_of(1_000) {
            write!(f, "{} ns", ps / 1_000)
        } else {
            write!(f, "{ps} ps")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_ns(7).as_ps(), 7_000);
        assert_eq!(SimTime::from_us(3).as_ns(), 3_000);
        assert_eq!(SimTime::from_ms(25).as_us(), 25_000);
        assert_eq!(SimTime::from_s(2).as_ms(), 2_000);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(4);
        assert_eq!(a + b, SimTime::from_ns(14));
        assert_eq!(a - b, SimTime::from_ns(6));
        assert_eq!(a * 3, SimTime::from_ns(30));
        assert_eq!(a / 2, SimTime::from_ns(5));
        let mut c = a;
        c += b;
        c -= SimTime::from_ns(2);
        assert_eq!(c, SimTime::from_ns(12));
    }

    #[test]
    fn saturating_and_checked() {
        assert_eq!(SimTime::MAX.saturating_add(SimTime::from_ns(1)), SimTime::MAX);
        assert_eq!(SimTime::from_ns(1).checked_sub(SimTime::from_ns(2)), None);
        assert_eq!(SimTime::from_ns(2).checked_sub(SimTime::from_ns(1)), Some(SimTime::from_ns(1)));
    }

    #[test]
    fn ordering_and_sum() {
        assert!(SimTime::from_ns(1) < SimTime::from_us(1));
        let total: SimTime = [SimTime::from_ns(1), SimTime::from_ns(2)].into_iter().sum();
        assert_eq!(total, SimTime::from_ns(3));
    }

    #[test]
    fn display_picks_coarsest_unit() {
        assert_eq!(SimTime::from_ms(25).to_string(), "25 ms");
        assert_eq!(SimTime::from_ps(1500).to_string(), "1500 ps");
        assert_eq!(SimTime::from_ns(1500).to_string(), "1500 ns");
        assert_eq!(SimTime::from_s(1).to_string(), "1 s");
        assert_eq!(SimTime::MAX.to_string(), "t_max");
    }

    #[test]
    fn zero_and_default() {
        assert!(SimTime::default().is_zero());
        assert_eq!(SimTime::ZERO, SimTime::from_ps(0));
    }
}
