//! The discrete-event scheduler at the heart of the kernel.
//!
//! Semantics follow the SystemC evaluation model: the kernel maintains a
//! timed event queue plus a *delta* queue. All actions scheduled for the
//! current time are executed in *delta cycles*: actions may schedule further
//! zero-delay actions, which run in the next delta cycle at the same
//! simulated time. Only when no delta work remains does time advance.

use core::cmp::Ordering;
use core::fmt;
use std::collections::{BinaryHeap, VecDeque};

use vpdift_sync::{shared, Shared};

use crate::process::{Next, Process};
use crate::time::SimTime;

/// Identifier of a kernel [`Event`](crate::Event-like) notification channel.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct EventId(usize);

/// Identifier of a registered [`Process`].
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct ProcessId(usize);

type OnceAction = Box<dyn FnOnce(&mut Kernel) + Send>;

enum Action {
    Resume(ProcessId),
    Notify(EventId),
    Once(OnceAction),
}

impl fmt::Debug for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Resume(p) => write!(f, "Resume({p:?})"),
            Action::Notify(e) => write!(f, "Notify({e:?})"),
            Action::Once(_) => write!(f, "Once(..)"),
        }
    }
}

struct Scheduled {
    at: SimTime,
    seq: u64,
    action: Action,
}

// BinaryHeap is a max-heap; invert ordering for earliest-first, with the
// sequence number breaking ties so same-time actions run in schedule order.
impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

#[derive(Default)]
struct EventRecord {
    /// Processes parked on this event (one-shot, re-armed by waiting again).
    waiters: Vec<ProcessId>,
}

struct ProcessSlot {
    body: Shared<dyn Process>,
    /// A process that returned [`Next::Stop`] is never resumed again.
    stopped: bool,
    name: &'static str,
}

/// Aggregate counters the kernel keeps while running; useful in tests and
/// performance reports.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct KernelStats {
    /// Number of distinct simulated timestamps at which activity occurred.
    pub timestamps: u64,
    /// Total delta cycles executed.
    pub delta_cycles: u64,
    /// Total actions (process resumes, notifications, one-shots) executed.
    pub actions: u64,
}

/// The discrete-event simulation kernel.
///
/// This is the SystemC-kernel substitute described in `DESIGN.md`: an
/// event-driven scheduler with timed notifications, delta cycles and
/// cooperative processes.
///
/// ```
/// use vpdift_kernel::{Kernel, SimTime};
/// use std::sync::atomic::{AtomicU32, Ordering};
/// use std::sync::Arc;
/// let mut k = Kernel::new();
/// let hits = Arc::new(AtomicU32::new(0));
/// let h = hits.clone();
/// k.schedule_in(SimTime::from_ns(5), move |_| { h.fetch_add(1, Ordering::Relaxed); });
/// k.run_until(SimTime::from_ns(10));
/// assert_eq!(hits.load(Ordering::Relaxed), 1);
/// ```
pub struct Kernel {
    now: SimTime,
    seq: u64,
    timed: BinaryHeap<Scheduled>,
    delta: VecDeque<Action>,
    next_delta: VecDeque<Action>,
    events: Vec<EventRecord>,
    processes: Vec<ProcessSlot>,
    stats: KernelStats,
}

impl Default for Kernel {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kernel")
            .field("now", &self.now)
            .field("pending_timed", &self.timed.len())
            .field("pending_delta", &(self.delta.len() + self.next_delta.len()))
            .field("events", &self.events.len())
            .field("processes", &self.processes.len())
            .field("stats", &self.stats)
            .finish()
    }
}

impl Kernel {
    /// Creates an empty kernel at time zero.
    pub fn new() -> Self {
        Kernel {
            now: SimTime::ZERO,
            seq: 0,
            timed: BinaryHeap::new(),
            delta: VecDeque::new(),
            next_delta: VecDeque::new(),
            events: Vec::new(),
            processes: Vec::new(),
            stats: KernelStats::default(),
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> KernelStats {
        self.stats
    }

    /// Allocates a new notification channel.
    pub fn create_event(&mut self) -> EventId {
        self.events.push(EventRecord::default());
        EventId(self.events.len() - 1)
    }

    /// Registers a process and schedules its first resume at the current
    /// time (next delta cycle), mirroring `SC_THREAD` start-up semantics.
    pub fn spawn<P: Process + 'static>(&mut self, name: &'static str, process: P) -> ProcessId {
        self.spawn_shared(name, shared(process))
    }

    /// Registers an externally owned process (shared via [`Shared`]), so
    /// models can keep a handle to their own state.
    pub fn spawn_shared(&mut self, name: &'static str, process: Shared<dyn Process>) -> ProcessId {
        let id = ProcessId(self.processes.len());
        self.processes.push(ProcessSlot { body: process, stopped: false, name });
        self.push_delta(Action::Resume(id));
        id
    }

    /// Name a process was registered under.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this kernel.
    pub fn process_name(&self, id: ProcessId) -> &'static str {
        self.processes[id.0].name
    }

    /// Schedules a one-shot closure after `delay` (zero = next delta cycle).
    pub fn schedule_in<F: FnOnce(&mut Kernel) + Send + 'static>(&mut self, delay: SimTime, f: F) {
        self.schedule_action(delay, Action::Once(Box::new(f)));
    }

    /// Notifies `event` after `delay`. A zero delay is a *delta
    /// notification*: waiters resume in the next delta cycle at the current
    /// time, never in the same one (matching `sc_event::notify(SC_ZERO_TIME)`).
    pub fn notify(&mut self, event: EventId, delay: SimTime) {
        self.schedule_action(delay, Action::Notify(event));
    }

    /// Parks `process` on `event` until the next notification (one-shot).
    pub fn wait_event(&mut self, process: ProcessId, event: EventId) {
        let rec = &mut self.events[event.0];
        if !rec.waiters.contains(&process) {
            rec.waiters.push(process);
        }
    }

    /// Schedules `process` to resume after `delay`.
    pub fn wait_for(&mut self, process: ProcessId, delay: SimTime) {
        self.schedule_action(delay, Action::Resume(process));
    }

    fn schedule_action(&mut self, delay: SimTime, action: Action) {
        if delay.is_zero() {
            self.push_delta(action);
        } else {
            let seq = self.seq;
            self.seq += 1;
            self.timed.push(Scheduled { at: self.now.saturating_add(delay), seq, action });
        }
    }

    fn push_delta(&mut self, action: Action) {
        self.next_delta.push_back(action);
    }

    /// `true` while any timed or delta activity is pending.
    pub fn has_pending(&self) -> bool {
        !self.timed.is_empty() || !self.delta.is_empty() || !self.next_delta.is_empty()
    }

    /// Time of the next pending timed action, if any.
    pub fn next_activity(&self) -> Option<SimTime> {
        if !self.delta.is_empty() || !self.next_delta.is_empty() {
            Some(self.now)
        } else {
            self.timed.peek().map(|s| s.at)
        }
    }

    /// Runs until the simulated clock would pass `deadline` or no activity
    /// remains. Actions scheduled exactly at `deadline` are executed. On
    /// return, `now` equals `deadline` if it was reached, else the time of
    /// the last executed action.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            // Drain all delta cycles at the current time first.
            self.run_delta_cycles();
            match self.timed.peek() {
                Some(head) if head.at <= deadline => {
                    let at = head.at;
                    self.now = at;
                    self.stats.timestamps += 1;
                    // Move every action at this timestamp into the delta queue.
                    while let Some(head) = self.timed.peek() {
                        if head.at != at {
                            break;
                        }
                        let entry = self.timed.pop().expect("peeked entry exists");
                        self.next_delta.push_back(entry.action);
                    }
                }
                _ => {
                    if deadline != SimTime::MAX && deadline > self.now {
                        self.now = deadline;
                    }
                    return;
                }
            }
        }
    }

    /// Runs for `duration` from the current time. See [`Kernel::run_until`].
    pub fn run_for(&mut self, duration: SimTime) {
        let deadline = self.now.saturating_add(duration);
        self.run_until(deadline);
    }

    /// Runs until no activity remains at all.
    ///
    /// Beware: periodic processes never stop; prefer [`Kernel::run_until`]
    /// for models containing free-running threads.
    pub fn run_to_completion(&mut self) {
        self.run_until(SimTime::MAX);
    }

    fn run_delta_cycles(&mut self) {
        while !self.next_delta.is_empty() {
            core::mem::swap(&mut self.delta, &mut self.next_delta);
            self.stats.delta_cycles += 1;
            while let Some(action) = self.delta.pop_front() {
                self.stats.actions += 1;
                self.execute(action);
            }
        }
    }

    fn execute(&mut self, action: Action) {
        match action {
            Action::Once(f) => f(self),
            Action::Notify(event) => {
                let waiters = core::mem::take(&mut self.events[event.0].waiters);
                for pid in waiters {
                    self.resume(pid);
                }
            }
            Action::Resume(pid) => self.resume(pid),
        }
    }

    fn resume(&mut self, pid: ProcessId) {
        if self.processes[pid.0].stopped {
            return;
        }
        let body = Shared::clone(&self.processes[pid.0].body);
        let next = body.borrow_mut().resume(self, pid);
        match next {
            Next::WaitFor(d) => self.wait_for(pid, d),
            Next::WaitEvent(e) => self.wait_event(pid, e),
            Next::Stop => self.processes[pid.0].stopped = true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering as AtOrd};
    use std::sync::{Arc, Mutex};

    #[test]
    fn one_shot_runs_at_scheduled_time() {
        let mut k = Kernel::new();
        let fired = Arc::new(Mutex::new(SimTime::ZERO));
        let f = fired.clone();
        k.schedule_in(SimTime::from_ns(7), move |k| *f.lock().unwrap() = k.now());
        k.run_until(SimTime::from_ns(100));
        assert_eq!(*fired.lock().unwrap(), SimTime::from_ns(7));
        assert_eq!(k.now(), SimTime::from_ns(100));
    }

    #[test]
    fn same_time_actions_run_in_schedule_order() {
        let mut k = Kernel::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..4 {
            let l = log.clone();
            k.schedule_in(SimTime::from_ns(5), move |_| l.lock().unwrap().push(i));
        }
        k.run_until(SimTime::from_ns(5));
        assert_eq!(*log.lock().unwrap(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn delta_notification_runs_in_next_delta_cycle_same_time() {
        let mut k = Kernel::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        let l1 = log.clone();
        let l2 = log.clone();
        k.schedule_in(SimTime::from_ns(1), move |k| {
            l1.lock().unwrap().push(("a", k.now()));
            let l3 = l1.clone();
            k.schedule_in(SimTime::ZERO, move |k| l3.lock().unwrap().push(("b", k.now())));
        });
        k.schedule_in(SimTime::from_ns(1), move |k| l2.lock().unwrap().push(("c", k.now())));
        k.run_until(SimTime::from_ns(1));
        let t = SimTime::from_ns(1);
        // "b" is delayed by one delta cycle, after "c" at the same timestamp.
        assert_eq!(*log.lock().unwrap(), vec![("a", t), ("c", t), ("b", t)]);
        assert!(k.stats().delta_cycles >= 2);
    }

    #[test]
    fn event_notification_wakes_waiters_once() {
        struct Waiter {
            event: EventId,
            wakeups: Arc<AtomicU32>,
            armed: bool,
        }
        impl Process for Waiter {
            fn resume(&mut self, _k: &mut Kernel, _id: ProcessId) -> Next {
                if self.armed {
                    self.wakeups.fetch_add(1, AtOrd::Relaxed);
                }
                self.armed = true;
                Next::WaitEvent(self.event)
            }
        }
        let mut k = Kernel::new();
        let ev = k.create_event();
        let wakeups = Arc::new(AtomicU32::new(0));
        k.spawn("waiter", Waiter { event: ev, wakeups: wakeups.clone(), armed: false });
        k.notify(ev, SimTime::from_ns(3));
        k.run_until(SimTime::from_ns(10));
        assert_eq!(wakeups.load(AtOrd::Relaxed), 1);
        // Second notification wakes it again (it re-armed itself).
        k.notify(ev, SimTime::from_ns(1));
        k.run_until(SimTime::from_ns(20));
        assert_eq!(wakeups.load(AtOrd::Relaxed), 2);
    }

    #[test]
    fn periodic_process_ticks_until_deadline() {
        struct Ticker {
            period: SimTime,
            ticks: Arc<AtomicU32>,
            first: bool,
        }
        impl Process for Ticker {
            fn resume(&mut self, _k: &mut Kernel, _id: ProcessId) -> Next {
                if !self.first {
                    self.ticks.fetch_add(1, AtOrd::Relaxed);
                }
                self.first = false;
                Next::WaitFor(self.period)
            }
        }
        let mut k = Kernel::new();
        let ticks = Arc::new(AtomicU32::new(0));
        k.spawn(
            "ticker",
            Ticker { period: SimTime::from_ms(25), ticks: ticks.clone(), first: true },
        );
        k.run_until(SimTime::from_s(1));
        // 40 Hz sensor cadence from Fig. 4 of the paper.
        assert_eq!(ticks.load(AtOrd::Relaxed), 40);
    }

    #[test]
    fn stopped_process_is_never_resumed_again() {
        struct Once {
            runs: Arc<AtomicU32>,
        }
        impl Process for Once {
            fn resume(&mut self, _k: &mut Kernel, _id: ProcessId) -> Next {
                self.runs.fetch_add(1, AtOrd::Relaxed);
                Next::Stop
            }
        }
        let mut k = Kernel::new();
        let runs = Arc::new(AtomicU32::new(0));
        let pid = k.spawn("once", Once { runs: runs.clone() });
        k.run_until(SimTime::from_ns(1));
        // Manual resume attempts are ignored after Stop.
        k.wait_for(pid, SimTime::from_ns(1));
        k.run_until(SimTime::from_ns(5));
        assert_eq!(runs.load(AtOrd::Relaxed), 1);
        assert_eq!(k.process_name(pid), "once");
    }

    #[test]
    fn run_to_completion_drains_everything() {
        let mut k = Kernel::new();
        let hits = Arc::new(AtomicU32::new(0));
        for i in 1..=5u64 {
            let h = hits.clone();
            k.schedule_in(SimTime::from_ns(i), move |_| {
                h.fetch_add(1, AtOrd::Relaxed);
            });
        }
        k.run_to_completion();
        assert_eq!(hits.load(AtOrd::Relaxed), 5);
        assert!(!k.has_pending());
        assert_eq!(k.now(), SimTime::from_ns(5));
    }

    #[test]
    fn next_activity_reports_earliest_pending() {
        let mut k = Kernel::new();
        assert_eq!(k.next_activity(), None);
        k.schedule_in(SimTime::from_ns(9), |_| {});
        k.schedule_in(SimTime::from_ns(4), |_| {});
        assert_eq!(k.next_activity(), Some(SimTime::from_ns(4)));
    }

    #[test]
    fn nested_scheduling_from_actions() {
        let mut k = Kernel::new();
        let log = Arc::new(Mutex::new(Vec::new()));
        let l = log.clone();
        k.schedule_in(SimTime::from_ns(1), move |k| {
            l.lock().unwrap().push(1);
            let l2 = l.clone();
            k.schedule_in(SimTime::from_ns(2), move |_| l2.lock().unwrap().push(2));
        });
        k.run_until(SimTime::from_ns(10));
        assert_eq!(*log.lock().unwrap(), vec![1, 2]);
        assert_eq!(k.stats().actions, 2);
    }
}
