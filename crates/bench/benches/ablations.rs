//! Ablation benchmarks for the design choices called out in DESIGN.md:
//! execution-clearance checking on/off, coarse vs per-byte immobilizer
//! policies, and DMA transfer cost with tag tracking.

use criterion::{criterion_group, criterion_main, Criterion};
use vpdift_core::{AddrRange, ExecClearance, SecurityPolicy, Tag};
use vpdift_immo::{protocol, PolicyKind, Variant};
use vpdift_periph::{Dma, Ram};
use vpdift_rv32::Tainted;
use vpdift_soc::{Soc, SocBuilder, SocExit};
use vpdift_tlm::{GenericPayload, Router};

/// Runs the primes workload under a given exec-clearance configuration.
fn run_with_exec(exec: ExecClearance) -> u64 {
    let policy = SecurityPolicy::builder("ablation").exec_clearance(exec).build();
    let cfg = SocBuilder::new().policy(policy).sensor_thread(false).build();
    let w = vpdift_firmware::primes::build(2_000);
    let mut soc = Soc::<Tainted>::new(cfg);
    soc.load_program(&w.program);
    assert_eq!(soc.run(w.max_insns), SocExit::Break);
    soc.instret()
}

fn bench_exec_clearance(c: &mut Criterion) {
    let mut g = c.benchmark_group("exec_clearance");
    g.sample_size(20);
    g.bench_function("unchecked", |b| b.iter(|| run_with_exec(ExecClearance::UNCHECKED)));
    g.bench_function("uniform_checked", |b| {
        b.iter(|| run_with_exec(ExecClearance::uniform(Tag::from_bits(u32::MAX))))
    });
    g.finish();
}

fn bench_policy_granularity(c: &mut Criterion) {
    let mut g = c.benchmark_group("immo_policy_granularity");
    g.sample_size(10);
    g.bench_function("coarse", |b| {
        b.iter(|| protocol::run_session::<Tainted>(Variant::Fixed, PolicyKind::Coarse, 3, b"q"))
    });
    g.bench_function("per_byte", |b| {
        b.iter(|| protocol::run_session::<Tainted>(Variant::Fixed, PolicyKind::PerByte, 3, b"q"))
    });
    g.finish();
}

fn bench_dma(c: &mut Criterion) {
    let mut g = c.benchmark_group("dma_copy_4k");
    for (name, tracking) in [("untracked", false), ("tracked", true)] {
        g.bench_function(name, |b| {
            let ram = Ram::new(64 * 1024, tracking).into_shared();
            ram.borrow_mut().classify(0, 4096, Tag::from_bits(1));
            let mut ports = Router::new("dma-ports");
            ports.map("ram", AddrRange::new(0, 64 * 1024), ram).unwrap();
            let mut dma = Dma::new(ports, None, None);
            b.iter(|| {
                use vpdift_tlm::TlmTarget;
                let mut d = vpdift_kernel::SimTime::ZERO;
                for (reg, v) in [(0x0, 0u32), (0x4, 0x4000), (0x8, 4096), (0xC, 1)] {
                    let mut p = GenericPayload::write_word(reg, vpdift_core::Taint::untainted(v));
                    dma.transport(&mut p, &mut d);
                    assert!(p.is_ok());
                }
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_exec_clearance, bench_policy_granularity, bench_dma);

/// Taint-density sweep: the same copy workload with 0%, 50% and 100% of
/// the source data classified — measuring how VP+ cost scales with the
/// amount of *actual* taint in flight (the tag lane is maintained either
/// way; density affects only LUB outcomes).
fn bench_taint_density(c: &mut Criterion) {
    use vpdift_asm::{Asm, Reg};

    fn copy_program(words: u32) -> vpdift_asm::Program {
        let mut a = Asm::new(0);
        a.li(Reg::T0, 0x10000); // src
        a.li(Reg::T1, 0x20000); // dst
        a.li(Reg::T2, words as i32);
        a.label("copy");
        a.lw(Reg::T3, 0, Reg::T0);
        a.sw(Reg::T3, 0, Reg::T1);
        a.addi(Reg::T0, Reg::T0, 4);
        a.addi(Reg::T1, Reg::T1, 4);
        a.addi(Reg::T2, Reg::T2, -1);
        a.bnez(Reg::T2, "copy");
        a.ebreak();
        a.assemble().unwrap()
    }

    let mut g = c.benchmark_group("taint_density_copy");
    g.sample_size(20);
    let prog = copy_program(4096);
    for (name, stride) in [("0pct", 0u32), ("50pct", 2), ("100pct", 1)] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let cfg = SocBuilder::new().sensor_thread(false).build();
                let mut soc = Soc::<Tainted>::new(cfg);
                soc.load_program(&prog);
                if stride > 0 {
                    let mut ram = soc.ram().borrow_mut();
                    let mut w = 0;
                    while w < 4096 {
                        ram.classify(0x10000 + w * 4, 4, Tag::from_bits(1));
                        w += stride;
                    }
                }
                assert_eq!(soc.run(1_000_000), SocExit::Break);
            })
        });
    }
    g.finish();
}

criterion_group!(density, bench_taint_density);
criterion_main!(benches, density);
