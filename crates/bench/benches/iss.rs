//! ISS throughput: the same guest kernel on the plain VP core vs the
//! DIFT-enabled VP+ core (the per-instruction cost behind Table II).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use vpdift_asm::{Asm, Reg};
use vpdift_rv32::{BlockCache, Cpu, FlatMemory, Plain, RunExit, TaintMode, Tainted};

/// A tight ALU/memory kernel of ~100k retired instructions.
fn kernel_program() -> vpdift_asm::Program {
    use Reg::*;
    let mut a = Asm::new(0);
    a.li(T0, 10_000); // outer counter
    a.li(T1, 0); // accumulator
    a.li(T2, 0x4000); // scratch pointer
    a.label("loop");
    a.add(T1, T1, T0);
    a.xori(T1, T1, 0x55);
    a.slli(T3, T1, 3);
    a.srli(T3, T3, 2);
    a.sw(T3, 0, T2);
    a.lw(T4, 0, T2);
    a.mul(T1, T1, T4);
    a.addi(T0, T0, -1);
    a.bnez(T0, "loop");
    a.ebreak();
    a.assemble().unwrap()
}

fn run_kernel<M: TaintMode>(image: &[u8]) -> u64 {
    let mut mem = FlatMemory::<M>::new(0, 64 * 1024);
    mem.load_image(0, image);
    let mut cpu = Cpu::<M>::new();
    assert_eq!(cpu.run(&mut mem, 10_000_000), RunExit::Break);
    cpu.instret()
}

/// The same kernel driven by the predecoded block-cache engine instead of
/// the fetch/decode interpreter.
fn run_kernel_cached<M: TaintMode>(image: &[u8]) -> u64 {
    let mut mem = FlatMemory::<M>::new(0, 64 * 1024);
    mem.load_image(0, image);
    let mut cpu = Cpu::<M>::new();
    let mut engine = BlockCache::new();
    assert_eq!(engine.run(&mut cpu, &mut mem, 10_000_000), RunExit::Break);
    cpu.instret()
}

fn bench_iss(c: &mut Criterion) {
    let prog = kernel_program();
    let image = prog.image().to_vec();
    let insns = run_kernel::<Plain>(&image);
    assert_eq!(insns, run_kernel_cached::<Plain>(&image), "engines must retire identically");

    let mut g = c.benchmark_group("iss_step_rate");
    g.throughput(Throughput::Elements(insns));
    g.sample_size(20);
    g.bench_function("vp_plain", |b| b.iter(|| run_kernel::<Plain>(&image)));
    g.bench_function("vp_plus_tainted", |b| b.iter(|| run_kernel::<Tainted>(&image)));
    g.bench_function("vp_plain_cached", |b| b.iter(|| run_kernel_cached::<Plain>(&image)));
    g.bench_function("vp_plus_tainted_cached", |b| b.iter(|| run_kernel_cached::<Tainted>(&image)));
    g.finish();
}

criterion_group!(benches, bench_iss);
criterion_main!(benches);
