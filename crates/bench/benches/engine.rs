//! SoC-level engine comparison: the same firmware workload driven by the
//! reference interpreter vs the predecoded block cache, on both VP
//! flavours. The ISS-level numbers live in `benches/iss.rs`; this bench
//! includes the full platform (bus routing, quantum loop, peripherals) so
//! it reflects what `Soc::run` users actually get from `--engine block`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use vpdift_rv32::{ExecMode, Plain, TaintMode, Tainted};
use vpdift_soc::{Soc, SocExit};

fn run_soc<M: TaintMode>(engine: ExecMode) -> u64 {
    let w = vpdift_firmware::primes::build(2_000);
    let cfg = Soc::<M>::builder().sensor_thread(false).engine(engine).build();
    let mut soc = Soc::<M>::new(cfg);
    soc.load_program(&w.program);
    assert_eq!(soc.run(w.max_insns), SocExit::Break);
    soc.instret()
}

fn bench_engines(c: &mut Criterion) {
    let insns = run_soc::<Plain>(ExecMode::Interp);
    assert_eq!(insns, run_soc::<Plain>(ExecMode::BlockCache), "engines must retire identically");

    let mut g = c.benchmark_group("soc_engine");
    g.throughput(Throughput::Elements(insns));
    g.sample_size(15);
    for engine in [ExecMode::Interp, ExecMode::BlockCache] {
        g.bench_function(&format!("vp_plain_{engine}"), |b| b.iter(|| run_soc::<Plain>(engine)));
        g.bench_function(&format!("vp_plus_{engine}"), |b| b.iter(|| run_soc::<Tainted>(engine)));
    }
    g.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
