//! Microbenchmarks of the DIFT engine's hot primitives: the `Taint<T>`
//! operators, tag LUB/flow checks, byte-lane conversion, and lattice
//! construction/compilation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use vpdift_core::{ifp, Tag, Taint};

fn bench_taint_arith(c: &mut Criterion) {
    let mut g = c.benchmark_group("taint_arith");
    let a = Taint::new(0xDEAD_BEEFu32, Tag::from_bits(0b01));
    let b = Taint::new(0x1234_5678u32, Tag::from_bits(0b10));
    g.bench_function("plain_u32_add", |bench| {
        let (x, y) = (0xDEAD_BEEFu32, 0x1234_5678u32);
        bench.iter(|| black_box(black_box(x).wrapping_add(black_box(y))))
    });
    g.bench_function("tainted_add", |bench| {
        bench.iter(|| black_box(black_box(a).wrapping_add(black_box(b))))
    });
    g.bench_function("tainted_xor", |bench| bench.iter(|| black_box(black_box(a) ^ black_box(b))));
    g.bench_function("tainted_compare", |bench| {
        bench.iter(|| black_box(black_box(a).tv_lt(black_box(b))))
    });
    g.finish();
}

fn bench_tag_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("tag_ops");
    let x = Tag::from_bits(0b1010);
    let y = Tag::from_bits(0b0110);
    g.bench_function("lub", |bench| bench.iter(|| black_box(black_box(x).lub(black_box(y)))));
    g.bench_function("flows_to", |bench| {
        bench.iter(|| black_box(black_box(x).flows_to(black_box(y))))
    });
    g.bench_function("declassify", |bench| {
        bench.iter(|| black_box(black_box(x).without(black_box(y))))
    });
    g.finish();
}

fn bench_byte_lanes(c: &mut Criterion) {
    let mut g = c.benchmark_group("byte_lanes");
    let w = Taint::new(0xCAFE_F00D_1234_5678u64, Tag::from_bits(0b11));
    g.bench_function("to_bytes_u64", |bench| {
        let mut lanes = [Taint::untainted(0u8); 8];
        bench.iter(|| {
            w.to_bytes(&mut lanes);
            black_box(&lanes);
        })
    });
    g.bench_function("from_bytes_u64", |bench| {
        let mut lanes = [Taint::untainted(0u8); 8];
        w.to_bytes(&mut lanes);
        bench.iter(|| black_box(Taint::<u64>::from_bytes(black_box(&lanes))))
    });
    g.finish();
}

fn bench_lattice(c: &mut Criterion) {
    let mut g = c.benchmark_group("lattice");
    g.bench_function("build_ifp3", |bench| bench.iter(|| black_box(ifp::conf_integrity())));
    let l = ifp::conf_integrity();
    g.bench_function("compile_ifp3", |bench| bench.iter(|| black_box(l.compile().unwrap())));
    let (a, b) = {
        let mut it = l.classes();
        (it.next().unwrap(), it.last().unwrap())
    };
    g.bench_function("table_lub", |bench| {
        bench.iter(|| black_box(l.lub(black_box(a), black_box(b))))
    });
    g.bench_function("table_allowed_flow", |bench| {
        bench.iter(|| black_box(l.allowed_flow(black_box(a), black_box(b))))
    });
    g.finish();
}

criterion_group!(benches, bench_taint_arith, bench_tag_ops, bench_byte_lanes, bench_lattice);
criterion_main!(benches);
