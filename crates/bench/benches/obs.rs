//! Observability overhead guard.
//!
//! The zero-cost claim of `vpdift-obs`: with the default `NullSink`, the
//! `Tainted` ISS runs the same machine code as before the observability
//! layer existed. This bench puts a number on it by comparing three
//! configurations of the same ~100k-instruction kernel:
//!
//! * `null_sink` — `Cpu<Tainted, NullSink>`: every hook is
//!   `if S::ENABLED { … }` with `ENABLED = false`, i.e. dead code. This
//!   must match `iss.rs`'s `vp_plus_tainted` within noise (recorded in
//!   `CHANGES.md`).
//! * `counting_sink` — a minimal enabled sink that only bumps a counter:
//!   the price of event *construction and dispatch* alone.
//! * `recorder` — the full [`vpdift_obs::Recorder`] (metrics + ring, no
//!   event log): the price users pay for `--metrics`/`--flight-recorder`.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use vpdift_asm::{Asm, Reg};
use vpdift_obs::{ObsEvent, ObsSink, Recorder};
use vpdift_rv32::{Cpu, FlatMemory, RunExit, Tainted};
use vpdift_sync::{shared, Shared};

/// The same ALU/memory kernel as `iss.rs` (~100k retired instructions).
fn kernel_program() -> vpdift_asm::Program {
    use Reg::*;
    let mut a = Asm::new(0);
    a.li(T0, 10_000); // outer counter
    a.li(T1, 0); // accumulator
    a.li(T2, 0x4000); // scratch pointer
    a.label("loop");
    a.add(T1, T1, T0);
    a.xori(T1, T1, 0x55);
    a.slli(T3, T1, 3);
    a.srli(T3, T3, 2);
    a.sw(T3, 0, T2);
    a.lw(T4, 0, T2);
    a.mul(T1, T1, T4);
    a.addi(T0, T0, -1);
    a.bnez(T0, "loop");
    a.ebreak();
    a.assemble().unwrap()
}

/// Cheapest possible enabled sink: isolates dispatch cost from recording
/// cost.
#[derive(Default)]
struct CountingSink {
    events: u64,
}

impl ObsSink for CountingSink {
    fn event(&mut self, _event: &ObsEvent) {
        self.events += 1;
    }
}

fn run_kernel<S: ObsSink>(image: &[u8], obs: Shared<S>) -> u64 {
    let mut mem = FlatMemory::<Tainted>::new(0, 64 * 1024);
    mem.load_image(0, image);
    let mut cpu = Cpu::<Tainted, S>::with_obs(obs);
    assert_eq!(cpu.run(&mut mem, 10_000_000), RunExit::Break);
    cpu.instret()
}

fn bench_obs(c: &mut Criterion) {
    let prog = kernel_program();
    let image = prog.image().to_vec();
    let insns = {
        let mut mem = FlatMemory::<Tainted>::new(0, 64 * 1024);
        mem.load_image(0, &image);
        let mut cpu = Cpu::<Tainted>::new();
        assert_eq!(cpu.run(&mut mem, 10_000_000), RunExit::Break);
        cpu.instret()
    };

    let mut g = c.benchmark_group("obs_overhead_tainted");
    g.throughput(Throughput::Elements(insns));
    g.sample_size(20);
    g.bench_function("null_sink", |b| b.iter(|| run_kernel(&image, shared(vpdift_obs::NullSink))));
    g.bench_function("counting_sink", |b| {
        b.iter(|| run_kernel(&image, shared(CountingSink::default())))
    });
    g.bench_function("recorder", |b| b.iter(|| run_kernel(&image, shared(Recorder::new(32)))));
    g.finish();
}

criterion_group!(benches, bench_obs);
criterion_main!(benches);
