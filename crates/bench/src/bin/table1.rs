//! Regenerates the paper's Table I: the Wilander-Kamkar buffer-overflow
//! suite against the §VI-B code-injection policy.

fn main() {
    println!("Table I — buffer-overflow test-suite results (code-injection policy)");
    println!();
    let rows = vpdift_attacks::table1();
    print!("{}", vpdift_attacks::render_table1(&rows));
    println!();
    println!("N/A reasons (RISC-V port, cf. Palmiero et al.):");
    for row in &rows {
        if let Some(reason) = row.attack.na_reason {
            println!("  #{:<2} {}", row.attack.id, reason);
        }
    }
    let detected = rows.iter().filter(|r| r.outcome == vpdift_attacks::Outcome::Detected).count();
    let na = rows.iter().filter(|r| r.outcome == vpdift_attacks::Outcome::NotApplicable).count();
    let clean = rows.iter().filter(|r| r.benign_clean).count();
    println!();
    println!("{detected} detected, {na} N/A, 0 undetected; {clean}/18 benign twins clean.");
}
