//! Profiler smoke check: runs the dhrystone workload on the tainted VP
//! with the guest profiler attached and asserts the profile is sane —
//! in particular that the dhrystone main loop (`dhry_loop`) dominates
//! the *inclusive* (flamegraph) attribution. Used by the `profile-smoke`
//! CI job; also writes folded-stack and flat-profile artifacts.
//!
//! ```text
//! profile_smoke [--iterations N] [--folded-out FILE] [--flat-out FILE]
//! ```
//!
//! Exit status: 0 when all assertions hold, 1 otherwise.

use std::process::ExitCode;
use vpdift_sync::shared;

use vpdift_firmware::dhrystone;
use vpdift_obs::{Recorder, SymbolMap};
use vpdift_rv32::Tainted;
use vpdift_soc::{Soc, SocBuilder, SocExit};

const USAGE: &str = "usage: profile_smoke [--iterations N] [--folded-out FILE] [--flat-out FILE]";

struct Options {
    iterations: u32,
    folded_out: Option<String>,
    flat_out: Option<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options { iterations: 200, folded_out: None, flat_out: None };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--iterations" => {
                let v = value("--iterations")?;
                opts.iterations = v.parse().map_err(|_| format!("bad --iterations {v}"))?;
            }
            "--folded-out" => opts.folded_out = Some(value("--folded-out")?),
            "--flat-out" => opts.flat_out = Some(value("--flat-out")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    if opts.iterations == 0 {
        return Err("--iterations must be > 0".into());
    }
    Ok(opts)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("profile_smoke: FAIL — {msg}");
    ExitCode::from(1)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };

    let workload = dhrystone::build(opts.iterations);
    let symbols = SymbolMap::from_program(&workload.program);
    let rec = shared(Recorder::new(32).with_symbols(symbols).with_profiler());

    let cfg = SocBuilder::new().sensor_thread(workload.needs_sensor).build();
    let mut soc: Soc<Tainted, Recorder> = Soc::with_obs(cfg, rec.clone());
    soc.load_program(&workload.program);
    let exit = soc.run(workload.max_insns);
    if !matches!(exit, SocExit::Break) {
        return fail(&format!("dhrystone did not exit cleanly: {exit:?}"));
    }
    let uart = soc.uart().borrow().output().to_vec();
    if !workload.verify(&uart) {
        return fail(&format!(
            "dhrystone checksum mismatch: uart={:?}",
            String::from_utf8_lossy(&uart)
        ));
    }

    let rec = rec.borrow();
    let prof = rec.profiler().expect("profiler enabled");
    eprintln!(
        "profile_smoke: {} iterations, {} instructions profiled",
        opts.iterations,
        prof.insns()
    );
    eprint!("{}", prof.render_flat(10));
    eprint!("{}", prof.render_tlm());

    // The paper-style sanity claim: the dhrystone main loop owns the run.
    // Exclusive counts crown the string-compare helper (it retires more
    // instructions per pass than the loop body itself), so the assertion
    // uses inclusive attribution, where callees accrue to their call
    // sites — the flamegraph view.
    let inclusive = prof.inclusive();
    let Some((top_symbol, top_count)) = inclusive.first() else {
        return fail("empty profile");
    };
    if top_symbol != "dhry_loop" {
        return fail(&format!(
            "top inclusive symbol is `{top_symbol}` ({top_count} insns), expected `dhry_loop`"
        ));
    }
    if prof.insns() == 0 || *top_count == 0 {
        return fail("no instructions attributed");
    }
    let share = *top_count as f64 / prof.insns() as f64;
    eprintln!(
        "profile_smoke: top inclusive symbol `{top_symbol}` owns {:.1}% of {} insns",
        share * 100.0,
        prof.insns()
    );
    if share < 0.5 {
        return fail(&format!("dhry_loop inclusive share {share:.2} below 0.5"));
    }

    // The whole run moves bytes over the bus (UART output at minimum).
    if prof.tlm_stats().is_empty() {
        return fail("no TLM transactions profiled");
    }

    if let Some(path) = &opts.folded_out {
        if let Err(e) = std::fs::write(path, prof.folded_output()) {
            return fail(&format!("cannot write {path}: {e}"));
        }
        eprintln!("profile_smoke: folded stacks written to {path}");
    }
    if let Some(path) = &opts.flat_out {
        if let Err(e) = std::fs::write(path, prof.render_flat(usize::MAX)) {
            return fail(&format!("cannot write {path}: {e}"));
        }
        eprintln!("profile_smoke: flat profile written to {path}");
    }
    eprintln!("profile_smoke: OK");
    ExitCode::SUCCESS
}
