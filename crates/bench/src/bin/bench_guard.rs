//! CI bench guard: reads a `taintvp-bench/v1` results file (as emitted by
//! `cargo bench -p vpdift-bench --bench iss -- --json BENCH_iss.json`) and
//! fails when the block-cache engine is not actually faster than the
//! reference interpreter on the plain VP — the regression the block cache
//! exists to prevent.
//!
//! Usage: `bench_guard [BENCH_iss.json]` (default path: `BENCH_iss.json`).
//!
//! Every passing run also appends one compact `taintvp-bench/v1` line to
//! the committed `BENCH_trajectory.jsonl` (override the path with
//! `BENCH_TRAJECTORY`), so the perf history accumulates across PRs
//! instead of living in a single overwritten snapshot.
//!
//! The parser is deliberately line-based (one entry object per line, the
//! shape our criterion shim writes) so the guard needs no JSON dependency.
//! Blank and truncated lines — the torn tail a killed bench run leaves in
//! `BENCH_trajectory.jsonl` or a half-written results file — are skipped
//! with a warning rather than tripping the guard.

use std::process::ExitCode;

use vpdift_bench::trajectory;

/// Extracts `"key": value` (a JSON number or string) from an entry line.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": ");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest.find([',', '}'])?;
    Some(rest[..end].trim().trim_matches('"'))
}

/// A complete entry line: starts an object and closes it. A killed writer
/// leaves a final line that opens `{` but never reaches `}` — that torn
/// tail (and any blank line) must be tolerated, not parsed as an entry.
fn is_complete_entry(line: &str) -> bool {
    let t = line.trim();
    t.starts_with('{') && (t.ends_with('}') || t.ends_with("},"))
}

/// Collects the complete entry lines of a `taintvp-bench/v1` file,
/// warning (once per line) about truncated leftovers instead of erroring.
fn collect_entries(text: &str) -> Vec<String> {
    let mut entries = Vec::new();
    for line in text.lines() {
        let t = line.trim();
        if t.is_empty() || !t.starts_with('{') {
            continue;
        }
        if is_complete_entry(line) {
            entries.push(line.to_owned());
        } else {
            eprintln!("bench_guard: warning: skipping truncated line `{:.60}…`", t);
        }
    }
    entries
}

fn median_of(entries: &[String], name: &str) -> Option<f64> {
    let line = entries.iter().find(|l| field(l, "name") == Some(name))?;
    field(line, "median")?.parse().ok()
}

fn main() -> ExitCode {
    let path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_iss.json".into());
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("bench_guard: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if !text.contains("\"schema\": \"taintvp-bench/v1\"") {
        eprintln!("bench_guard: {path} is not a taintvp-bench/v1 results file");
        return ExitCode::FAILURE;
    }
    let entries = collect_entries(&text);

    let mut fail = false;
    let ratio = |label: &str, num: &str, den: &str| -> Option<f64> {
        let (n, d) = (median_of(&entries, num)?, median_of(&entries, den)?);
        println!("{label}: {num} = {n:.0} ns, {den} = {d:.0} ns ({:.2}x)", d / n);
        Some(d / n)
    };

    match ratio("plain speedup", "vp_plain_cached", "vp_plain") {
        Some(speedup) if speedup > 1.0 => {}
        Some(speedup) => {
            eprintln!(
                "bench_guard: block-cache vp_plain is not faster than the interpreter \
                 ({speedup:.2}x)"
            );
            fail = true;
        }
        None => {
            eprintln!("bench_guard: missing vp_plain / vp_plain_cached entries in {path}");
            fail = true;
        }
    }
    // Informational: the VP+ engines and the overhead ratio they imply.
    if let (Some(ti), Some(tc), Some(pi), Some(pc)) = (
        median_of(&entries, "vp_plus_tainted"),
        median_of(&entries, "vp_plus_tainted_cached"),
        median_of(&entries, "vp_plain"),
        median_of(&entries, "vp_plain_cached"),
    ) {
        println!("VP+/VP overhead: interp {:.2}x, block-cache {:.2}x", ti / pi, tc / pc);
    }

    if fail {
        return ExitCode::FAILURE;
    }

    // Log this run to the append-only perf trajectory.
    let tracked = ["vp_plain", "vp_plain_cached", "vp_plus_tainted", "vp_plus_tainted_cached"];
    let logged: Vec<trajectory::Entry> = tracked
        .iter()
        .filter_map(|name| {
            median_of(&entries, name)
                .map(|m| trajectory::Entry::new("iss_step_rate", name, "ns/iter", m))
        })
        .collect();
    let line = trajectory::render_line("bench_guard", trajectory::now_unix(), &logged);
    let traj_path = trajectory::path();
    match trajectory::append(&traj_path, &line) {
        Ok(()) => println!("bench_guard: trajectory appended to {traj_path}"),
        Err(e) => eprintln!("bench_guard: warning: cannot append to {traj_path}: {e}"),
    }

    println!("bench_guard: ok");
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truncated_and_blank_lines_are_skipped() {
        let text = concat!(
            "{\n",
            "  \"schema\": \"taintvp-bench/v1\",\n",
            "  \"entries\": [\n",
            "    {\"group\": \"g\", \"name\": \"vp_plain\", \"unit\": \"ns/iter\", \"median\": 10.0},\n",
            "\n",
            "    {\"group\": \"g\", \"name\": \"vp_plain_cached\", \"unit\": \"ns/iter\", \"median\": 5.0}\n",
            "  ]\n",
            "}\n",
            "{\"group\": \"g\", \"name\": \"torn\", \"unit\": \"ns/iter\", \"med"
        );
        let entries = collect_entries(text);
        assert_eq!(entries.len(), 2, "blank + torn lines skipped, not parsed");
        assert_eq!(median_of(&entries, "vp_plain"), Some(10.0));
        assert_eq!(median_of(&entries, "vp_plain_cached"), Some(5.0));
        assert_eq!(median_of(&entries, "torn"), None);
    }

    #[test]
    fn field_extraction() {
        let line = r#"    {"group": "iss_step_rate", "name": "vp_plain", "unit": "ns/iter", "median": 1234.500, "mean": 1300.000, "min": 1200.000, "max": 1500.000, "samples": 20, "throughput_elems": 90009},"#;
        assert_eq!(field(line, "name"), Some("vp_plain"));
        assert_eq!(field(line, "median"), Some("1234.500"));
        assert_eq!(field(line, "samples"), Some("20"));
    }
}
