//! Regenerates the paper's Table II: simulation performance of the plain
//! VP vs the DIFT-enabled VP+ over the seven benchmark workloads.
//!
//! Usage: `table2 [scale]` — scale 1 (default) runs in seconds; larger
//! scales approach the paper's multi-billion-instruction runs.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let extended = args.iter().any(|a| a == "--extended");
    let scale: u32 = args.iter().find_map(|a| a.parse().ok()).unwrap_or(1);
    eprintln!("running Table II at scale {scale} (build with --release for meaningful MIPS)…");
    let mut rows = vpdift_bench::table2(scale);
    if extended {
        rows.extend(
            vpdift_firmware::extended_workloads(scale).iter().map(vpdift_bench::measure_workload),
        );
    }
    println!(
        "Table II — performance overhead of VP-based DIFT (scale {scale}{})",
        if extended { ", extended" } else { "" }
    );
    println!();
    print!("{}", vpdift_bench::render_table2(&rows));
}
