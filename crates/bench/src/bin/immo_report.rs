//! Regenerates the §VI-A case-study narrative: policy development and
//! validation for the car-engine immobilizer.

use vpdift_immo::scenarios::{run_scenario, Scenario};
use vpdift_immo::{run_session, PolicyKind, Variant};
use vpdift_rv32::Tainted;
use vpdift_soc::SocExit;

fn main() {
    println!("=== Car-engine immobilizer case study (paper §VI-A) ===\n");

    println!("[1] Challenge-response protocol under the coarse IFP-3 policy:");
    let out = run_session::<Tainted>(Variant::Fixed, PolicyKind::Coarse, 3, b"q");
    println!("    3 rounds -> {} authentications, exit {:?}\n", out.authentications, out.exit);

    println!("[2] Manually written test-suite finding: UART debug memory dump");
    let out = run_session::<Tainted>(Variant::Vulnerable, PolicyKind::Coarse, 0, b"dq");
    match out.exit {
        SocExit::Violation(v) => println!("    vulnerable firmware: VIOLATION — {v}"),
        other => println!("    vulnerable firmware: {other:?} (unexpected)"),
    }
    let out = run_session::<Tainted>(Variant::Fixed, PolicyKind::Coarse, 0, b"dq");
    println!(
        "    fixed firmware:      {:?}, dump of {} bytes, PIN excluded\n",
        out.exit,
        out.uart.len()
    );

    println!("[3] Attack scenarios vs the coarse policy:");
    for s in Scenario::ALL {
        let r = run_scenario(s, false);
        println!("    {:<45} {}", s.name(), if r.detected { "DETECTED" } else { "not detected" });
    }
    println!();
    println!("[4] The entropy-reduction attack slips through; refined per-byte policy:");
    for s in Scenario::ALL {
        let r = run_scenario(s, true);
        println!("    {:<45} {}", s.name(), if r.detected { "DETECTED" } else { "not detected" });
    }
    println!();
    println!("[5] The brute-force attack the entropy reduction enables (16 x 256 trials):");
    match vpdift_immo::crack_pin(PolicyKind::Coarse) {
        vpdift_immo::CrackOutcome::Recovered { pin, trials } => {
            println!("    coarse policy:   PIN recovered in {trials} AES trials: {pin:02x?}");
        }
        other => println!("    coarse policy:   unexpectedly blocked: {other:?}"),
    }
    match vpdift_immo::crack_pin(PolicyKind::PerByte) {
        vpdift_immo::CrackOutcome::Blocked { step } => {
            println!("    per-byte policy: blocked at attack step {step}");
        }
        other => println!("    per-byte policy: FAILED to block: {other:?}"),
    }

    println!();
    println!("Conclusion: per-byte PIN classes close the entropy-reduction hole,");
    println!("reproducing the paper's policy-development narrative.");
}
