//! Seeded fault-injection campaign runner.
//!
//! Replays the immobilizer and attack-suite scenarios under `--runs`
//! deterministic fault schedules derived from `--seed`, classifies every
//! outcome, and prints (or writes with `--out`) the campaign report as
//! deterministic JSON: the same seed always produces byte-identical
//! output.
//!
//! Exit status: `0` on a fully classified campaign, `2` when any run of
//! the immobilizer session ended in silent data corruption (the outcome
//! the resilience machinery exists to prevent), `1` on bad arguments.

use std::process::ExitCode;

use vpdift_faults::{render_json, run_campaign, CampaignConfig, Outcome};

const USAGE: &str = "usage: faultcamp [--seed N] [--runs N] [--rate R] [--out FILE]";

fn parse_args() -> Result<(CampaignConfig, Option<String>), String> {
    let mut cfg = CampaignConfig::default();
    let mut out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--seed" => {
                let v = value("--seed")?;
                cfg.seed = parse_u64(&v).ok_or(format!("bad --seed {v}"))?;
            }
            "--runs" => {
                let v = value("--runs")?;
                cfg.runs = v.parse().map_err(|_| format!("bad --runs {v}"))?;
            }
            "--rate" => {
                let v = value("--rate")?;
                cfg.rate = v.parse().map_err(|_| format!("bad --rate {v}"))?;
                if !(cfg.rate > 0.0 && cfg.rate.is_finite()) {
                    return Err(format!("--rate must be a positive finite number, got {v}"));
                }
            }
            "--out" => out = Some(value("--out")?),
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    Ok((cfg, out))
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() -> ExitCode {
    let (cfg, out) = match parse_args() {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };

    eprintln!(
        "faultcamp: seed=0x{:x} runs={} rate={} — running campaign...",
        cfg.seed, cfg.runs, cfg.rate
    );
    let report = run_campaign(&cfg);
    let json = render_json(&report);

    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("faultcamp: cannot write {path}: {e}");
                return ExitCode::from(1);
            }
            eprintln!("faultcamp: report written to {path}");
        }
        None => print!("{json}"),
    }

    eprintln!("faultcamp: outcome summary:");
    for o in Outcome::ALL {
        eprintln!("  {:>16}: {}", o.label(), report.total(o));
    }

    let immo_sdc = report.scenario_count("immo-session", Outcome::Sdc);
    if immo_sdc > 0 {
        eprintln!(
            "faultcamp: FAIL — {immo_sdc} immobilizer run(s) ended in silent data corruption"
        );
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}
