//! Seeded fault-injection campaign runner.
//!
//! Replays the immobilizer and attack-suite scenarios under `--runs`
//! deterministic fault schedules derived from `--seed`, classifies every
//! outcome, and prints (or writes with `--out`) the campaign report as
//! deterministic JSON: the same seed always produces byte-identical
//! output.
//!
//! With `--workers N` (N > 1) the seeded runs execute on the
//! `vpdift-fleet` work-stealing executor; the report is byte-identical
//! to the serial one regardless of worker count. `--journal FILE`
//! streams results into a crash-safe `taintvp-fleet/v1` JSONL journal
//! and `--resume` picks an interrupted campaign up where it stopped.
//!
//! Exit status: `0` on a fully classified campaign, `2` when any run of
//! the immobilizer session ended in silent data corruption (the outcome
//! the resilience machinery exists to prevent), `1` on bad arguments.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

use vpdift_bench::trajectory;
use vpdift_faults::campaign::ReferenceInfo;
use vpdift_faults::{render_json, run_campaign, CampaignConfig, Outcome};
use vpdift_fleet::{run_campaign_fleet, spawn_sampler, FleetConfig, SamplerConfig, TelemetryHub};
use vpdift_obs::MetricsServer;

const USAGE: &str = "usage: faultcamp [--seed N] [--runs N] [--rate R] [--out FILE] [--json FILE] \
     [--workers N] [--journal FILE] [--resume] [--progress] \
     [--telemetry-interval-ms N] [--telemetry-out FILE] \
     [--metrics-addr HOST:PORT] [--metrics-linger-ms N]";

#[derive(Default)]
struct Options {
    out: Option<String>,
    bench_json: Option<String>,
    workers: usize,
    journal: Option<String>,
    resume: bool,
    telemetry_interval_ms: u64,
    telemetry_out: Option<String>,
    metrics_addr: Option<String>,
    metrics_linger_ms: u64,
    progress: bool,
}

impl Options {
    /// Whether any telemetry consumer is configured. Telemetry rides the
    /// fleet executor, so these flags also force the fleet path.
    fn telemetry_on(&self) -> bool {
        self.telemetry_out.is_some() || self.metrics_addr.is_some() || self.progress
    }
}

fn parse_args() -> Result<(CampaignConfig, Options), String> {
    let mut cfg = CampaignConfig::default();
    let mut opts = Options { workers: 1, telemetry_interval_ms: 500, ..Options::default() };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--seed" => {
                let v = value("--seed")?;
                cfg.seed = parse_u64(&v).ok_or(format!("bad --seed {v}"))?;
            }
            "--runs" => {
                let v = value("--runs")?;
                cfg.runs = v.parse().map_err(|_| format!("bad --runs {v}"))?;
            }
            "--rate" => {
                let v = value("--rate")?;
                cfg.rate = v.parse().map_err(|_| format!("bad --rate {v}"))?;
                if !(cfg.rate > 0.0 && cfg.rate.is_finite()) {
                    return Err(format!("--rate must be a positive finite number, got {v}"));
                }
            }
            "--out" => opts.out = Some(value("--out")?),
            "--json" => opts.bench_json = Some(value("--json")?),
            "--workers" => {
                let v = value("--workers")?;
                opts.workers = v.parse().map_err(|_| format!("bad --workers {v}"))?;
                if opts.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--journal" => opts.journal = Some(value("--journal")?),
            "--resume" => opts.resume = true,
            "--telemetry-interval-ms" => {
                let v = value("--telemetry-interval-ms")?;
                opts.telemetry_interval_ms =
                    v.parse().map_err(|_| format!("bad --telemetry-interval-ms {v}"))?;
                if opts.telemetry_interval_ms == 0 {
                    return Err("--telemetry-interval-ms must be at least 1".into());
                }
            }
            "--telemetry-out" => opts.telemetry_out = Some(value("--telemetry-out")?),
            "--metrics-addr" => opts.metrics_addr = Some(value("--metrics-addr")?),
            "--metrics-linger-ms" => {
                let v = value("--metrics-linger-ms")?;
                opts.metrics_linger_ms =
                    v.parse().map_err(|_| format!("bad --metrics-linger-ms {v}"))?;
            }
            "--progress" => opts.progress = true,
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument {other}\n{USAGE}")),
        }
    }
    if opts.resume && opts.journal.is_none() {
        return Err("--resume needs --journal".into());
    }
    if opts.metrics_linger_ms > 0 && opts.metrics_addr.is_none() {
        return Err("--metrics-linger-ms needs --metrics-addr".into());
    }
    Ok((cfg, opts))
}

/// Renders the `taintvp-bench/v1` trajectory entry for this campaign:
/// the deterministic per-scenario reference step counts plus the
/// campaign's wall time (the only nondeterministic entry).
fn render_bench_json(references: &[ReferenceInfo], wall_ns: u128) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"taintvp-bench/v1\",\n");
    out.push_str("  \"suite\": \"faultcamp\",\n");
    out.push_str("  \"entries\": [\n");
    for r in references {
        out.push_str(&format!(
            "    {{\"group\": \"reference\", \"name\": \"{}\", \"unit\": \"steps\", \"median\": {}, \"mean\": {}, \"min\": {}, \"max\": {}, \"samples\": 1, \"throughput_elems\": null}},\n",
            r.scenario, r.steps, r.steps, r.steps, r.steps
        ));
    }
    out.push_str(&format!(
        "    {{\"group\": \"campaign\", \"name\": \"wall_time\", \"unit\": \"ns\", \"median\": {wall_ns}, \"mean\": {wall_ns}, \"min\": {wall_ns}, \"max\": {wall_ns}, \"samples\": 1, \"throughput_elems\": null}}\n"
    ));
    out.push_str("  ]\n}\n");
    out
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn main() -> ExitCode {
    let (cfg, opts) = match parse_args() {
        Ok(parsed) => parsed,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };

    eprintln!(
        "faultcamp: seed=0x{:x} runs={} rate={} workers={} — running campaign...",
        cfg.seed, cfg.runs, cfg.rate, opts.workers
    );
    let wall_start = Instant::now();

    // The fleet path handles parallel execution, journaling, and
    // telemetry; the plain serial path stays the default.
    let use_fleet = opts.workers > 1 || opts.journal.is_some() || opts.telemetry_on();
    let hub = opts.telemetry_on().then(|| TelemetryHub::new(opts.workers));
    let metrics_server = match (&opts.metrics_addr, &hub) {
        (Some(addr), Some(h)) => {
            let render_hub = Arc::clone(h);
            let render = Arc::new(move || vpdift_fleet::telemetry::render_prom(&render_hub));
            match MetricsServer::bind(addr, render) {
                Ok(server) => {
                    eprintln!(
                        "faultcamp: metrics endpoint on http://{}/metrics",
                        server.local_addr()
                    );
                    Some(server)
                }
                Err(e) => {
                    eprintln!("faultcamp: {e}");
                    return ExitCode::from(1);
                }
            }
        }
        _ => None,
    };
    let sampler = match &hub {
        Some(h) => {
            let sampler_config = SamplerConfig {
                interval: Duration::from_millis(opts.telemetry_interval_ms),
                out: opts.telemetry_out.as_ref().map(std::path::PathBuf::from),
                progress: true,
            };
            match spawn_sampler(Arc::clone(h), sampler_config) {
                Ok(s) => Some(s),
                Err(e) => {
                    eprintln!("faultcamp: cannot start telemetry sampler: {e}");
                    return ExitCode::from(1);
                }
            }
        }
        None => None,
    };

    let (json, references, summary, failures) = if use_fleet {
        let fleet_config =
            FleetConfig { workers: opts.workers, telemetry: hub.clone(), ..FleetConfig::default() };
        let journal_path = opts.journal.as_ref().map(std::path::Path::new);
        match run_campaign_fleet(&cfg, &fleet_config, journal_path, opts.resume) {
            Ok(campaign) => {
                if campaign.resumed > 0 {
                    eprintln!(
                        "faultcamp: resumed {} completed run(s) from journal",
                        campaign.resumed
                    );
                }
                let failures = campaign.failures.clone();
                (campaign.json, campaign.references, campaign.summary, failures)
            }
            Err(e) => {
                eprintln!("faultcamp: fleet campaign failed: {e}");
                return ExitCode::from(1);
            }
        }
    } else {
        let report = run_campaign(&cfg);
        (render_json(&report), report.references.clone(), report.summary.to_vec(), Vec::new())
    };
    let wall_ns = wall_start.elapsed().as_nanos();
    if let Some(h) = &hub {
        // run_campaign_fleet does not own the hub lifecycle; finish it
        // here so the sampler emits its final snapshot and exits.
        h.mark_done();
    }
    if let Some(s) = sampler {
        if let Err(e) = s.finish() {
            eprintln!("faultcamp: warning: telemetry stream write failed: {e}");
        }
    }

    if let Some(path) = &opts.bench_json {
        if let Err(e) = std::fs::write(path, render_bench_json(&references, wall_ns)) {
            eprintln!("faultcamp: cannot write bench JSON to {path}: {e}");
            return ExitCode::from(1);
        }
        eprintln!("faultcamp: bench trajectory written to {path}");

        // And one compact line into the append-only perf trajectory log.
        let mut logged: Vec<trajectory::Entry> = references
            .iter()
            .map(|r| trajectory::Entry::new("reference", r.scenario, "steps", r.steps as f64))
            .collect();
        logged.push(trajectory::Entry::new("campaign", "wall_time", "ns", wall_ns as f64));
        logged.push(trajectory::Entry::new("campaign", "workers", "count", opts.workers as f64));
        if let Some(h) = &hub {
            let snap = h.snapshot();
            logged.push(trajectory::Entry::new(
                "campaign",
                "jobs_per_s",
                "jobs/s",
                snap.jobs_per_s(),
            ));
            logged.push(trajectory::Entry::new("campaign", "insns", "count", snap.insns as f64));
        }
        let line = trajectory::render_line("faultcamp", trajectory::now_unix(), &logged);
        let traj_path = trajectory::path();
        match trajectory::append(&traj_path, &line) {
            Ok(()) => eprintln!("faultcamp: trajectory appended to {traj_path}"),
            Err(e) => eprintln!("faultcamp: warning: cannot append to {traj_path}: {e}"),
        }
    }

    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("faultcamp: cannot write {path}: {e}");
                return ExitCode::from(1);
            }
            eprintln!("faultcamp: report written to {path}");
        }
        None => print!("{json}"),
    }

    eprintln!("faultcamp: outcome summary:");
    for o in Outcome::ALL {
        eprintln!("  {:>16}: {}", o.label(), summary[o.index()]);
    }
    for (job, status) in &failures {
        eprintln!("faultcamp: run {job} did not complete: {status}");
    }

    let immo_sdc = vpdift_fleet::campaign::count_scenario_outcome(&json, "immo-session", "sdc");
    let exit = if immo_sdc > 0 {
        eprintln!(
            "faultcamp: FAIL — {immo_sdc} immobilizer run(s) ended in silent data corruption"
        );
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    };
    if let Some(server) = metrics_server {
        // Keep the endpoint up for post-run scrapes (CI asserts final
        // counters against the journal) before tearing it down.
        if opts.metrics_linger_ms > 0 {
            eprintln!(
                "faultcamp: metrics endpoint lingering {}ms for final scrapes",
                opts.metrics_linger_ms
            );
            std::thread::sleep(Duration::from_millis(opts.metrics_linger_ms));
        }
        server.shutdown();
    }
    exit
}
