//! Prints the Fig. 1 information-flow policies: lattices, LUB tables,
//! allowed-flow matrices and Graphviz renderings.

use vpdift_core::{ifp, Lattice};

fn describe(name: &str, l: &Lattice) {
    println!("=== {name} ===");
    print!("{l}");
    println!("allowedFlow matrix (row -> column):");
    print!("{:>10}", "");
    for c in l.classes() {
        print!("{:>10}", l.name(c));
    }
    println!();
    for a in l.classes() {
        print!("{:>10}", l.name(a));
        for b in l.classes() {
            print!("{:>10}", if l.allowed_flow(a, b) { "yes" } else { "-" });
        }
        println!();
    }
    println!("LUB table:");
    for a in l.classes() {
        for b in l.classes() {
            if a < b {
                println!("  LUB({}, {}) = {}", l.name(a), l.name(b), l.name(l.lub(a, b)));
            }
        }
    }
    let compiled = l.compile().expect("Fig. 1 lattices compile");
    println!("compiled tags ({} atoms):", compiled.atoms().len());
    for c in l.classes() {
        println!("  {:>10} -> {}", l.name(c), compiled.tag(c));
    }
    println!("graphviz:\n{}", l.to_dot(name));
}

fn main() {
    describe("IFP-1 (confidentiality)", &ifp::confidentiality());
    describe("IFP-2 (integrity)", &ifp::integrity());
    describe("IFP-3 (confidentiality x integrity)", &ifp::conf_integrity());
    println!("Example 1: LUB((LC,LI),(HC,HI)) in IFP-3:");
    let l = ifp::conf_integrity();
    let a = l.class("(LC,LI)").unwrap();
    let b = l.class("(HC,HI)").unwrap();
    println!("  = {}", l.name(l.lub(a, b)));
}
