//! # vpdift-bench — the experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation
//! (see `DESIGN.md` §5 and `EXPERIMENTS.md`):
//!
//! * `cargo run --release -p vpdift-bench --bin table1` — Table I
//!   (Wilander-Kamkar code-injection results),
//! * `cargo run --release -p vpdift-bench --bin table2 [scale]` — Table II
//!   (VP vs VP+ simulation performance),
//! * `cargo run -p vpdift-bench --bin immo_report` — the §VI-A
//!   case-study narrative,
//! * `cargo run -p vpdift-bench --bin ifp_report` — the Fig. 1 IFPs,
//! * `cargo bench -p vpdift-bench` — Criterion microbenchmarks and
//!   ablations.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::time::{Duration, Instant};

use vpdift_core::{ExecClearance, SecurityPolicy, Tag};
use vpdift_firmware::Workload;
use vpdift_immo::{firmware, protocol, Variant};
use vpdift_rv32::{Plain, TaintMode, Tainted};
use vpdift_soc::{Soc, SocBuilder, SocExit};

/// A single timed simulation run.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Retired guest instructions.
    pub instret: u64,
    /// Host wall-clock time of the simulation.
    pub wall: Duration,
}

impl Measurement {
    /// Million simulated instructions per host second.
    pub fn mips(&self) -> f64 {
        self.instret as f64 / self.wall.as_secs_f64().max(1e-9) / 1e6
    }
}

/// One Table II row.
#[derive(Debug)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Retired instructions (identical for VP and VP+ by construction).
    pub instret: u64,
    /// Instruction words in the final binary ("LoC ASM").
    pub loc_asm: usize,
    /// The plain-VP measurement.
    pub vp: Measurement,
    /// The DIFT VP+ measurement.
    pub vp_plus: Measurement,
}

impl Table2Row {
    /// The overhead factor `VP+ time / VP time`.
    pub fn overhead(&self) -> f64 {
        self.vp_plus.wall.as_secs_f64() / self.vp.wall.as_secs_f64().max(1e-9)
    }
}

/// The policy VP+ benchmark runs use: full execution-clearance checking
/// (with an all-permissive clearance so nothing fires) and classified
/// peripheral inputs — the DIFT engine does all its work, as in the
/// paper's VP+ column, without aborting the benchmark.
pub fn bench_policy() -> SecurityPolicy {
    let all = Tag::from_bits(u32::MAX);
    SecurityPolicy::builder("bench")
        .source("terminal.rx", Tag::atom(0))
        .source("sensor.data", Tag::atom(1))
        .sink("uart.tx", all)
        .sink("can.tx", all)
        .exec_clearance(ExecClearance::uniform(all))
        .build()
}

/// Runs `workload` on mode `M`, verifying its output, and returns the
/// measurement.
///
/// # Panics
/// Panics if the workload does not finish with `ebreak` or its output
/// fails host verification — a benchmark that computes wrong results is
/// not a benchmark.
pub fn run_workload<M: TaintMode>(workload: &Workload) -> Measurement {
    let mut cfg = if M::TRACKING {
        SocBuilder::new().policy(bench_policy()).build()
    } else {
        SocBuilder::new().build()
    };
    cfg.sensor_thread = workload.needs_sensor;
    let mut soc = Soc::<M>::new(cfg);
    soc.load_program(&workload.program);
    let start = Instant::now();
    let exit = soc.run(workload.max_insns);
    let wall = start.elapsed();
    assert_eq!(exit, SocExit::Break, "workload {} did not finish", workload.name);
    let out = soc.uart().borrow().output().to_vec();
    assert!(workload.verify(&out), "workload {} failed verification", workload.name);
    Measurement { instret: soc.instret(), wall }
}

/// Measures one workload on both VPs.
pub fn measure_workload(workload: &Workload) -> Table2Row {
    let vp = run_workload::<Plain>(workload);
    let vp_plus = run_workload::<Tainted>(workload);
    assert_eq!(vp.instret, vp_plus.instret, "{}: modes must retire equally", workload.name);
    Table2Row { name: workload.name, instret: vp.instret, loc_asm: workload.loc_asm(), vp, vp_plus }
}

/// Runs the `immo-fixed` benchmark (the seventh Table II row): the fixed
/// immobilizer firmware answering `rounds` challenge-response
/// authentications plus a debug-dump session.
pub fn run_immo_bench<M: TaintMode>(rounds: u32) -> (Measurement, usize) {
    let fw = firmware::build(Variant::Fixed);
    let kind =
        if M::TRACKING { protocol::PolicyKind::Coarse } else { protocol::PolicyKind::Permissive };
    let cfg =
        SocBuilder::new().policy(protocol::policy_for(kind, &fw)).sensor_thread(false).build();
    let mut soc = Soc::<M>::new(cfg);
    let (mut ecu, challenges) = protocol::prepare_session(&mut soc, &fw, rounds, b"dq", 0xBE);
    let start = Instant::now();
    let exit = soc.run(u64::MAX / 2);
    let wall = start.elapsed();
    assert_eq!(exit, SocExit::Break, "immo-fixed did not finish");
    for ch in &challenges {
        assert!(ecu.verify_response(soc.can_host(), ch), "authentication failed");
    }
    (Measurement { instret: soc.instret(), wall }, fw.program.insn_count())
}

/// Measures the `immo-fixed` row.
pub fn measure_immo(rounds: u32) -> Table2Row {
    let (vp, loc) = run_immo_bench::<Plain>(rounds);
    let (vp_plus, _) = run_immo_bench::<Tainted>(rounds);
    Table2Row { name: "immo-fixed", instret: vp.instret, loc_asm: loc, vp, vp_plus }
}

/// Builds all seven Table II rows at `scale`.
pub fn table2(scale: u32) -> Vec<Table2Row> {
    let mut rows: Vec<Table2Row> =
        vpdift_firmware::table2_workloads(scale).iter().map(measure_workload).collect();
    rows.push(measure_immo(300 * scale));
    rows
}

/// Renders Table II in the paper's format.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "Benchmark      |  #instr. exec. | LoC ASM |  Sim. Time [s]    |     MIPS     |  Ov\n",
    );
    out.push_str(
        "               |                |         |    VP      VP+    |   VP    VP+  |\n",
    );
    out.push_str(
        "---------------+----------------+---------+-------------------+--------------+------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<14} | {:>14} | {:>7} | {:>8.3} {:>8.3}  | {:>6.1} {:>5.1} | {:>4.1}x\n",
            r.name,
            r.instret,
            r.loc_asm,
            r.vp.wall.as_secs_f64(),
            r.vp_plus.wall.as_secs_f64(),
            r.vp.mips(),
            r.vp_plus.mips(),
            r.overhead()
        ));
    }
    let n = rows.len().max(1) as f64;
    let sum_instr: u128 = rows.iter().map(|r| r.instret as u128).sum();
    let sum_loc: usize = rows.iter().map(|r| r.loc_asm).sum();
    let sum_vp: f64 = rows.iter().map(|r| r.vp.wall.as_secs_f64()).sum();
    let sum_vpp: f64 = rows.iter().map(|r| r.vp_plus.wall.as_secs_f64()).sum();
    out.push_str(
        "---------------+----------------+---------+-------------------+--------------+------\n",
    );
    out.push_str(&format!(
        "{:<14} | {:>14} | {:>7} | {:>8.3} {:>8.3}  | {:>6.1} {:>5.1} | {:>4.1}x\n",
        "- average -",
        sum_instr / rows.len().max(1) as u128,
        sum_loc / rows.len().max(1),
        sum_vp / n,
        sum_vpp / n,
        rows.iter().map(|r| r.vp.mips()).sum::<f64>() / n,
        rows.iter().map(|r| r.vp_plus.mips()).sum::<f64>() / n,
        sum_vpp / sum_vp.max(1e-9),
    ));
    out
}

/// Machine-readable performance trajectory: an append-only JSONL log
/// (`BENCH_trajectory.jsonl` at the workspace root) with one compact
/// `taintvp-bench/v1` line per `bench_guard` / `faultcamp --json` run, so
/// the perf history is reconstructible across PRs instead of a single
/// overwritten snapshot.
pub mod trajectory {
    use std::io::Write as _;

    /// Default trajectory path, relative to the invocation directory;
    /// override with the `BENCH_TRAJECTORY` environment variable.
    pub const DEFAULT_PATH: &str = "BENCH_trajectory.jsonl";

    /// One measurement inside a trajectory line.
    #[derive(Debug, Clone)]
    pub struct Entry {
        /// Benchmark group, e.g. `iss_step_rate`.
        pub group: String,
        /// Benchmark name, e.g. `vp_plain`.
        pub name: String,
        /// Measurement unit, e.g. `ns/iter` or `steps`.
        pub unit: String,
        /// The measured value (a median for timed benches).
        pub value: f64,
    }

    impl Entry {
        /// Convenience constructor.
        pub fn new(group: &str, name: &str, unit: &str, value: f64) -> Self {
            Self { group: group.into(), name: name.into(), unit: unit.into(), value }
        }
    }

    /// The trajectory path: `$BENCH_TRAJECTORY` or [`DEFAULT_PATH`].
    pub fn path() -> String {
        std::env::var("BENCH_TRAJECTORY").unwrap_or_else(|_| DEFAULT_PATH.into())
    }

    /// Renders one compact single-line `taintvp-bench/v1` record.
    /// `t_unix` orders runs in the log (0 is fine for tests).
    pub fn render_line(suite: &str, t_unix: u64, entries: &[Entry]) -> String {
        let mut line = format!(
            "{{\"schema\": \"taintvp-bench/v1\", \"suite\": \"{suite}\", \
             \"t_unix\": {t_unix}, \"entries\": ["
        );
        for (i, e) in entries.iter().enumerate() {
            if i > 0 {
                line.push_str(", ");
            }
            let value = if e.value.fract() == 0.0 {
                format!("{}", e.value as i64)
            } else {
                format!("{:.3}", e.value)
            };
            line.push_str(&format!(
                "{{\"group\": \"{}\", \"name\": \"{}\", \"unit\": \"{}\", \"value\": {value}}}",
                e.group, e.name, e.unit
            ));
        }
        line.push_str("]}");
        line
    }

    /// Appends `line` (no trailing newline needed) to the trajectory log,
    /// creating the file on first use.
    ///
    /// A killed writer can leave the log without its final newline; gluing
    /// the next entry onto that torn tail would corrupt *two* lines, so a
    /// missing terminator is repaired with a newline before appending.
    pub fn append(path: &str, line: &str) -> std::io::Result<()> {
        use std::io::{Read as _, Seek as _, SeekFrom};
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        let len = f.metadata()?.len();
        if len > 0 {
            let mut tail = [0u8; 1];
            let mut probe = std::fs::File::open(path)?;
            probe.seek(SeekFrom::Start(len - 1))?;
            probe.read_exact(&mut tail)?;
            if tail[0] != b'\n' {
                writeln!(f)?;
            }
        }
        writeln!(f, "{line}")
    }

    /// Seconds since the Unix epoch, saturating to 0 on clock trouble.
    pub fn now_unix() -> u64 {
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trajectory_line_is_valid_single_line_json() {
        let entries = vec![
            trajectory::Entry::new("iss_step_rate", "vp_plain", "ns/iter", 1152989.0),
            trajectory::Entry::new("campaign", "wall_time", "ns", 123.456),
        ];
        let line = trajectory::render_line("bench_guard", 0, &entries);
        assert!(!line.contains('\n'), "one line per run: {line}");
        vpdift_obs::export::validate_json(&line).expect("trajectory line parses");
        assert!(line.contains("\"schema\": \"taintvp-bench/v1\""));
        assert!(line.contains("\"value\": 1152989"));
        assert!(line.contains("\"value\": 123.456"));
    }

    #[test]
    fn trajectory_appends_one_line_per_run() {
        let path = std::env::temp_dir().join("taintvp_trajectory_test.jsonl");
        let path = path.to_str().unwrap();
        let _ = std::fs::remove_file(path);
        for t in 0..3 {
            let line = trajectory::render_line("faultcamp", t, &[]);
            trajectory::append(path, &line).expect("append works");
        }
        let log = std::fs::read_to_string(path).expect("log readable");
        assert_eq!(log.lines().count(), 3);
        assert!(log.lines().all(|l| l.starts_with("{\"schema\": \"taintvp-bench/v1\"")));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn trajectory_append_repairs_a_torn_tail() {
        let path = std::env::temp_dir().join("taintvp_trajectory_torn_test.jsonl");
        let path = path.to_str().unwrap();
        // A killed writer left the log without its final newline.
        std::fs::write(path, "{\"schema\": \"taintvp-bench/v1\", \"suite\": \"faultc").unwrap();
        let line = trajectory::render_line("faultcamp", 1, &[]);
        trajectory::append(path, &line).expect("append works");
        let log = std::fs::read_to_string(path).expect("log readable");
        assert_eq!(log.lines().count(), 2, "torn tail stays its own line");
        assert!(
            log.lines().nth(1).unwrap().starts_with("{\"schema\": \"taintvp-bench/v1\""),
            "new entry is not glued onto the torn tail"
        );
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn measurement_mips() {
        let m = Measurement { instret: 2_000_000, wall: Duration::from_secs(1) };
        assert!((m.mips() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn small_workload_measures_on_both_modes() {
        let w = vpdift_firmware::primes::build(500);
        let row = measure_workload(&w);
        assert!(row.instret > 10_000);
        assert!(row.overhead() > 0.0);
        assert_eq!(row.name, "primes");
    }

    #[test]
    fn immo_bench_row() {
        let row = measure_immo(2);
        assert_eq!(row.name, "immo-fixed");
        assert!(row.instret > 1_000);
        assert!(row.loc_asm > 100);
    }

    #[test]
    fn render_contains_all_rows() {
        let w = vpdift_firmware::primes::build(300);
        let rows = vec![measure_workload(&w)];
        let s = render_table2(&rows);
        assert!(s.contains("primes"));
        assert!(s.contains("- average -"));
    }
}
