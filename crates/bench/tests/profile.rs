//! Exporter coverage on a real workload: runs dhrystone on the tainted
//! VP with the full observability stack attached and checks that every
//! export format — Chrome trace, folded stacks, flat profile, flow
//! DOT/JSON — is structurally well-formed.

use vpdift_firmware::dhrystone;
use vpdift_obs::export::{validate_json, write_chrome_trace};
use vpdift_obs::{Recorder, SymbolMap};
use vpdift_rv32::Tainted;
use vpdift_soc::{Soc, SocBuilder, SocExit};

/// Runs a short dhrystone pass with profiler + event log enabled and
/// returns the recorder.
fn profiled_dhrystone() -> Recorder {
    let workload = dhrystone::build(5);
    let symbols = SymbolMap::from_program(&workload.program);
    let rec = vpdift_sync::shared(
        Recorder::new(64).with_symbols(symbols).with_event_log().with_profiler(),
    );
    let cfg = SocBuilder::new().sensor_thread(workload.needs_sensor).build();
    let mut soc: Soc<Tainted, Recorder> = Soc::with_obs(cfg, rec.clone());
    soc.load_program(&workload.program);
    let exit = soc.run(workload.max_insns);
    assert!(matches!(exit, SocExit::Break), "dhrystone exits cleanly: {exit:?}");
    assert!(workload.verify(soc.uart().borrow().output()), "checksum holds");
    drop(soc);
    match std::sync::Arc::try_unwrap(rec) {
        Ok(cell) => cell.into_inner(),
        Err(_) => panic!("sole owner"),
    }
}

#[test]
fn chrome_trace_of_dhrystone_run_is_valid_json() {
    let rec = profiled_dhrystone();
    assert!(!rec.events().is_empty(), "event log captured something");
    let mut buf = Vec::new();
    write_chrome_trace(&mut buf, rec.events()).unwrap();
    let json = String::from_utf8(buf).unwrap();
    validate_json(&json).unwrap_or_else(|e| panic!("invalid chrome trace: {e}\n{json}"));
    assert!(json.contains("\"traceEvents\""));
}

#[test]
fn folded_stacks_have_flamegraph_line_shape() {
    let rec = profiled_dhrystone();
    let folded = rec.profiler().expect("profiler on").folded_output();
    assert!(!folded.is_empty(), "folded output nonempty");
    for line in folded.lines() {
        // flamegraph.pl input: `frame;frame;...;frame count`
        let (stack, count) = line.rsplit_once(' ').unwrap_or_else(|| {
            panic!("folded line has no count: {line:?}");
        });
        assert!(!stack.is_empty(), "empty stack in {line:?}");
        assert!(count.parse::<u64>().is_ok(), "count is a decimal integer in {line:?}");
        for frame in stack.split(';') {
            assert!(!frame.is_empty(), "empty frame in {line:?}");
            assert!(!frame.contains(' '), "frame contains a space in {line:?}");
        }
    }
    // The main loop shows up somewhere in the stacks.
    assert!(folded.contains("dhry_loop"), "dhry_loop present:\n{folded}");
}

#[test]
fn flat_profile_accounts_for_every_instruction() {
    let rec = profiled_dhrystone();
    let prof = rec.profiler().expect("profiler on");
    assert!(prof.insns() > 0);
    let flat_total: u64 = prof.flat().iter().map(|(_, c)| c).sum();
    assert_eq!(flat_total, prof.insns(), "flat profile sums to total instructions");
    // TLM histograms saw the UART traffic the workload produces.
    assert!(prof.tlm_stats().keys().any(|t| t == "uart"), "uart in TLM stats");
}

#[test]
fn flow_exports_on_clean_run_are_wellformed_and_empty() {
    // dhrystone touches no classified data, so the flow graph is empty —
    // but the exports must still be structurally valid documents.
    let rec = profiled_dhrystone();
    let atoms = vpdift_core::AtomTable::from_names(["secret"]);

    let mut dot = Vec::new();
    rec.write_flow_dot(&mut dot, &atoms).unwrap();
    let dot = String::from_utf8(dot).unwrap();
    assert!(dot.starts_with("digraph taint_flow {"), "{dot}");
    assert_eq!(dot.matches('{').count(), dot.matches('}').count(), "{dot}");

    let mut json = Vec::new();
    rec.write_flow_json(&mut json, &atoms).unwrap();
    let json = String::from_utf8(json).unwrap();
    validate_json(&json).unwrap_or_else(|e| panic!("invalid flow json: {e}\n{json}"));
    assert!(json.contains("\"taintvp-flow/v1\""), "{json}");
}
