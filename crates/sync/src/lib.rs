//! Thread-safe shared-cell primitives underpinning the `Send` virtual
//! prototype.
//!
//! A [`Soc`](../vpdift_soc/struct.Soc.html) is a densely aliased object
//! graph: RAM is reachable from the CPU bus, the DMA's private port map and
//! the taint-introspection peripheral; the DIFT engine from the CPU and
//! every classifying peripheral; the observability sink from all of them.
//! Historically that aliasing was `Rc<RefCell<T>>` — correct for the
//! single-threaded simulator, but it froze every session onto one thread
//! and made fleet execution (N parallel campaign sessions) impossible.
//!
//! [`MutCell`] replaces `RefCell` with the *same dynamic borrow
//! discipline* — shared borrows count up, an exclusive borrow requires no
//! outstanding borrow, conflicts panic — implemented on an atomic counter
//! so the cell is `Sync` and an [`Arc`]-shared graph of them is `Send`.
//! Within one VP the graph is still used strictly single-threaded (each
//! fleet worker owns its sessions outright), so a borrow conflict remains
//! what it always was: a re-entrancy bug, reported by panic exactly as
//! `RefCell` would. The uncontended atomic costs one `compare_exchange`
//! per borrow, which is what keeps this viable on the VP's hot paths.
//!
//! [`Shared<T>`] is the `Arc<MutCell<T>>` alias used throughout the
//! workspace, constructed via [`shared`].

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Borrow-state value marking an active exclusive borrow.
const WRITING: usize = usize::MAX;

/// An atomically borrow-checked cell: `RefCell` semantics (counted shared
/// borrows, exclusive mutable borrow, panic on conflict) with `Sync`
/// sharing, so object graphs built from [`Shared`] handles are `Send`.
pub struct MutCell<T: ?Sized> {
    /// 0 = unborrowed, `WRITING` = exclusively borrowed, else the number
    /// of live shared borrows.
    borrows: AtomicUsize,
    value: UnsafeCell<T>,
}

// SAFETY: the atomic borrow counter serialises *mutable* access — an
// exclusive borrow is only granted when no other borrow (shared or
// exclusive) is live, and shared borrows never coexist with an exclusive
// one. Shared borrows DO coexist with each other, and a `Sync` cell lets
// two threads hold `&T` concurrently, so `T: Sync` is required in
// addition to `T: Send` — exactly the `RwLock<T>: Sync` bounds. (With
// only `T: Send`, a `T = Cell<u32>` could be data-raced through two
// concurrent shared borrows in safe code.)
unsafe impl<T: ?Sized + Send> Send for MutCell<T> {}
unsafe impl<T: ?Sized + Send + Sync> Sync for MutCell<T> {}

impl<T> MutCell<T> {
    /// Wraps `value`.
    pub fn new(value: T) -> Self {
        MutCell { borrows: AtomicUsize::new(0), value: UnsafeCell::new(value) }
    }

    /// Consumes the cell and returns the wrapped value.
    pub fn into_inner(self) -> T {
        self.value.into_inner()
    }
}

impl<T: ?Sized> MutCell<T> {
    /// Takes a shared borrow.
    ///
    /// # Panics
    /// If an exclusive borrow is live (same discipline as
    /// [`RefCell::borrow`](std::cell::RefCell::borrow)).
    #[inline]
    #[track_caller]
    pub fn borrow(&self) -> MutRef<'_, T> {
        match self.try_borrow() {
            Some(r) => r,
            None => panic!("MutCell already mutably borrowed"),
        }
    }

    /// Takes a shared borrow, or returns `None` if an exclusive borrow
    /// is live — the non-panicking [`borrow`](MutCell::borrow).
    #[inline]
    pub fn try_borrow(&self) -> Option<MutRef<'_, T>> {
        let mut cur = self.borrows.load(Ordering::Relaxed);
        loop {
            if cur == WRITING {
                return None;
            }
            match self.borrows.compare_exchange_weak(
                cur,
                cur + 1,
                Ordering::Acquire,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Some(MutRef { cell: self }),
                Err(seen) => cur = seen,
            }
        }
    }

    /// Takes the exclusive borrow.
    ///
    /// # Panics
    /// If any borrow is live (same discipline as
    /// [`RefCell::borrow_mut`](std::cell::RefCell::borrow_mut)).
    #[inline]
    #[track_caller]
    pub fn borrow_mut(&self) -> MutRefMut<'_, T> {
        if self.borrows.compare_exchange(0, WRITING, Ordering::Acquire, Ordering::Relaxed).is_err()
        {
            panic!("MutCell already borrowed");
        }
        MutRefMut { cell: self }
    }

    /// Exclusive access through a unique reference — no runtime check
    /// needed.
    pub fn get_mut(&mut self) -> &mut T {
        self.value.get_mut()
    }
}

impl<T: Default> Default for MutCell<T> {
    fn default() -> Self {
        MutCell::new(T::default())
    }
}

impl<T: ?Sized + core::fmt::Debug> core::fmt::Debug for MutCell<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        // Best-effort: skip the value rather than panic when borrowed.
        // `try_borrow` (not a load-then-borrow) so a racing `borrow_mut`
        // can never turn the formatter into a panic.
        match self.try_borrow() {
            Some(v) => f.debug_struct("MutCell").field("value", &&*v).finish(),
            None => f.debug_struct("MutCell").field("value", &"<mutably borrowed>").finish(),
        }
    }
}

/// A shared borrow of a [`MutCell`].
pub struct MutRef<'a, T: ?Sized> {
    cell: &'a MutCell<T>,
}

impl<T: ?Sized> Deref for MutRef<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: the borrow counter guarantees no exclusive borrow is
        // live while this guard exists.
        unsafe { &*self.cell.value.get() }
    }
}

impl<T: ?Sized> Drop for MutRef<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.cell.borrows.fetch_sub(1, Ordering::Release);
    }
}

/// The exclusive borrow of a [`MutCell`].
pub struct MutRefMut<'a, T: ?Sized> {
    cell: &'a MutCell<T>,
}

impl<T: ?Sized> Deref for MutRefMut<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        // SAFETY: this guard is the unique exclusive borrow.
        unsafe { &*self.cell.value.get() }
    }
}

impl<T: ?Sized> DerefMut for MutRefMut<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: this guard is the unique exclusive borrow.
        unsafe { &mut *self.cell.value.get() }
    }
}

impl<T: ?Sized> Drop for MutRefMut<'_, T> {
    #[inline]
    fn drop(&mut self) {
        self.cell.borrows.store(0, Ordering::Release);
    }
}

/// A shared, interiorly mutable handle — the workspace-wide replacement
/// for `Rc<RefCell<T>>`.
pub type Shared<T> = Arc<MutCell<T>>;

/// Wraps `value` for sharing: `shared(x)` is the canonical spelling of
/// the old `Rc::new(RefCell::new(x))`.
pub fn shared<T>(value: T) -> Shared<T> {
    Arc::new(MutCell::new(value))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_borrows_coexist() {
        let c = MutCell::new(7);
        let a = c.borrow();
        let b = c.borrow();
        assert_eq!(*a + *b, 14);
    }

    #[test]
    fn exclusive_borrow_mutates() {
        let c = shared(vec![1, 2]);
        c.borrow_mut().push(3);
        assert_eq!(c.borrow().len(), 3);
    }

    #[test]
    #[should_panic(expected = "already borrowed")]
    fn conflict_panics_like_refcell() {
        let c = MutCell::new(0u32);
        let _shared = c.borrow();
        let _mut = c.borrow_mut();
    }

    #[test]
    #[should_panic(expected = "already mutably borrowed")]
    fn shared_after_exclusive_panics() {
        let c = MutCell::new(0u32);
        let _mut = c.borrow_mut();
        let _shared = c.borrow();
    }

    #[test]
    fn unsizes_to_trait_objects() {
        trait Speak {
            fn speak(&self) -> u32;
        }
        struct S(u32);
        impl Speak for S {
            fn speak(&self) -> u32 {
                self.0
            }
        }
        let obj: Shared<dyn Speak + Send + Sync> = shared(S(9));
        assert_eq!(obj.borrow().speak(), 9);
    }

    #[test]
    fn try_borrow_yields_none_under_exclusive() {
        let c = MutCell::new(3u32);
        {
            let _m = c.borrow_mut();
            assert!(c.try_borrow().is_none());
            // Debug must not panic while exclusively borrowed.
            assert!(format!("{c:?}").contains("<mutably borrowed>"));
        }
        assert_eq!(*c.try_borrow().expect("free again"), 3);
    }

    #[test]
    fn sync_requires_inner_sync() {
        // `MutCell<T>: Sync` must demand `T: Sync`, not just `T: Send`
        // — shared borrows hand out `&T` to several threads at once.
        fn assert_sync<T: Sync>() {}
        assert_sync::<MutCell<u32>>();
        // Compile-fail half is enforced by the trait solver; u32 above
        // plus the `Shared<dyn _ + Send + Sync>` aliases across the
        // workspace exercise the positive side.
    }

    #[test]
    fn graph_is_send() {
        fn assert_send<T: Send>(_: &T) {}
        let g: Shared<Vec<u32>> = shared(vec![1]);
        assert_send(&g);
        let h = g.clone();
        let t = std::thread::spawn(move || h.borrow_mut().push(2));
        t.join().unwrap();
        assert_eq!(*g.borrow(), vec![1, 2]);
    }

    #[test]
    fn sequential_borrows_after_drop() {
        let c = MutCell::new(1);
        {
            let _m = c.borrow_mut();
        }
        {
            let _s = c.borrow();
        }
        let _m2 = c.borrow_mut();
    }
}
