//! Integration of the textual frontends: assembly source + policy file
//! drive the same engine as the Rust builders (the `taintvp-run` path).

use taintvp::asm::parse_asm;
use taintvp::core::parse_policy;
use taintvp::prelude::{Soc, SocBuilder, SocExit};
use taintvp::rv32::Tainted;

const PROGRAM: &str = r#"
# copy 4 key bytes to the UART
        li   t0, 0x2000
        li   t1, 0x10000000
        li   t2, 4
loop:
        lbu  t3, 0(t0)
        sw   t3, 0(t1)
        addi t0, t0, 1
        addi t2, t2, -1
        bnez t2, loop
        ebreak
key:
"#;

const POLICY: &str = r#"
policy text-demo
atom secret
classify 0x2000 +4 secret
sink uart.tx public
"#;

#[test]
fn textual_program_and_policy_enforce_together() {
    let program = parse_asm(PROGRAM, 0).expect("program parses");
    let (policy, atoms) = parse_policy(POLICY).expect("policy parses");
    assert_eq!(policy.name(), "text-demo");

    let mut soc = Soc::<Tainted>::new(SocBuilder::new().policy(policy).build());
    soc.load_program(&program);
    soc.ram().borrow_mut().load_image(0x2000, b"KEY!");
    soc.ram().borrow_mut().classify(0x2000, 4, atoms.tag("secret").unwrap());
    match soc.run(10_000) {
        SocExit::Violation(v) => {
            assert_eq!(atoms.describe(v.tag), "secret");
            assert_eq!(atoms.describe(v.required), "public");
        }
        other => panic!("expected violation, got {other:?}"),
    }
    assert!(soc.uart().borrow().output().is_empty());
}

#[test]
fn textual_program_runs_clean_without_classification() {
    let program = parse_asm(PROGRAM, 0).expect("program parses");
    let (policy, _) = parse_policy("policy open\nsink uart.tx public\n").unwrap();
    let mut soc = Soc::<Tainted>::new(SocBuilder::new().policy(policy).build());
    soc.load_program(&program);
    soc.ram().borrow_mut().load_image(0x2000, b"ok!!");
    assert_eq!(soc.run(10_000), SocExit::Break);
    assert_eq!(soc.uart().borrow().output(), b"ok!!");
}

#[test]
fn text_and_builder_assemblies_are_bit_identical() {
    use taintvp::asm::{Asm, Reg};
    let text =
        parse_asm("start:\n  li a0, 0x12345678\n  add a1, a0, a0\n  ebreak\n", 0x80).unwrap();
    let mut b = Asm::new(0x80);
    b.label("start");
    b.li(Reg::A0, 0x12345678);
    b.add(Reg::A1, Reg::A0, Reg::A0);
    b.ebreak();
    assert_eq!(text.image(), b.assemble().unwrap().image());
}
