//! End-to-end tests of the `taintvp-run` CLI binary.

use std::process::Command;

fn run_cli(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_taintvp-run"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("CLI binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn enforced_leak_exits_2_with_diagnostics() {
    let (code, _stdout, stderr) =
        run_cli(&["docs/examples/leak.s", "--policy", "docs/examples/leak.policy"]);
    assert_eq!(code, 2, "violation exit code");
    assert!(stderr.contains("DIFT violation"));
    assert!(stderr.contains("[secret]"), "atom names resolved: {stderr}");
    assert!(stderr.contains("[public]"));
}

#[test]
fn plain_mode_runs_clean() {
    let (code, stdout, stderr) = run_cli(&["docs/examples/leak.s", "--plain", "--dump-uart-hex"]);
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(stdout.contains("uart[1]"));
    assert!(stderr.contains("clean exit"));
}

#[test]
fn record_mode_logs_and_traces() {
    let (code, _stdout, stderr) = run_cli(&[
        "docs/examples/leak.s",
        "--policy",
        "docs/examples/leak.policy",
        "--record",
        "--trace",
        "2",
    ]);
    assert_eq!(code, 0, "record mode completes");
    assert!(stderr.contains("recorded violation"));
    assert!(stderr.contains("0x00000000: lui"), "trace lines present: {stderr}");
}

#[test]
fn usage_errors_exit_1() {
    let (code, _, stderr) = run_cli(&[]);
    assert_eq!(code, 1);
    assert!(stderr.contains("usage"));

    let (code, _, stderr) = run_cli(&["/nonexistent.s"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("cannot read"));

    let (code, _, stderr) = run_cli(&["docs/examples/leak.s", "--bogus"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("unknown option"));
}

#[test]
fn explain_walks_the_immobilizer_leak() {
    let (code, _stdout, stderr) = run_cli(&[
        "docs/examples/immo_leak.s",
        "--policy",
        "docs/examples/immobilizer.policy",
        "--explain",
    ]);
    assert_eq!(code, 2, "violation exit code; stderr: {stderr}");
    assert!(stderr.contains("== taint flow explanation =="), "explain header: {stderr}");
    // Classification site, an intermediate hop with symbol + disassembly,
    // and the violating sink — the full source-to-sink walk.
    assert!(stderr.contains("source  pin @0x2000"), "classification site: {stderr}");
    assert!(stderr.contains("<leak_loop>"), "hop symbol: {stderr}");
    assert!(stderr.contains("lbu t0, 0(s0)"), "hop disassembly: {stderr}");
    assert!(stderr.contains("sink    uart.tx"), "violating sink: {stderr}");
}

#[test]
fn flow_graph_exports_render_structurally() {
    let dir = std::env::temp_dir();
    let dot_path = dir.join("taintvp_cli_flow.dot");
    let json_path = dir.join("taintvp_cli_flow.json");
    let (code, _stdout, stderr) = run_cli(&[
        "docs/examples/immo_leak.s",
        "--policy",
        "docs/examples/immobilizer.policy",
        "--flow-dot",
        dot_path.to_str().unwrap(),
        "--flow-json",
        json_path.to_str().unwrap(),
    ]);
    assert_eq!(code, 2, "stderr: {stderr}");

    let dot = std::fs::read_to_string(&dot_path).expect("DOT written");
    assert!(dot.starts_with("digraph taint_flow {"), "DOT header: {dot}");
    assert!(dot.trim_end().ends_with('}'), "DOT closes: {dot}");
    assert_eq!(dot.matches('{').count(), dot.matches('}').count(), "balanced braces: {dot}");
    assert!(dot.contains("subgraph cluster_atom0"), "per-atom cluster: {dot}");
    assert!(dot.contains("source: pin"), "source node: {dot}");
    assert!(dot.contains("sink: uart.tx"), "sink node: {dot}");
    assert!(dot.contains("->"), "edges present: {dot}");

    let json = std::fs::read_to_string(&json_path).expect("JSON written");
    assert!(json.contains("\"schema\": \"taintvp-flow/v1\""), "schema tag: {json}");
    assert!(json.contains("\"site\": \"uart.tx\""), "sink record: {json}");
    let _ = std::fs::remove_file(&dot_path);
    let _ = std::fs::remove_file(&json_path);
}

#[test]
fn profile_prints_flat_and_tlm_sections() {
    let (code, _stdout, stderr) = run_cli(&[
        "docs/examples/leak.s",
        "--policy",
        "docs/examples/leak.policy",
        "--record",
        "--profile",
    ]);
    assert_eq!(code, 0, "record mode completes; stderr: {stderr}");
    assert!(stderr.contains("guest profile"), "profiler section: {stderr}");
    assert!(stderr.contains("TLM access/latency"), "TLM section: {stderr}");
}

#[test]
fn input_escapes_reach_the_terminal() {
    // docs/examples/echo_once.s echoes one console byte; feed it \x41.
    let (code, stdout, _) = run_cli(&["docs/examples/echo_once.s", "--plain", "--input", "\\x41"]);
    assert_eq!(code, 0);
    assert!(stdout.contains('A'));
}

#[test]
fn metrics_json_export_is_valid_and_tagged() {
    let path = std::env::temp_dir().join("taintvp_cli_metrics.json");
    let (code, _stdout, stderr) = run_cli(&[
        "docs/examples/leak.s",
        "--policy",
        "docs/examples/leak.policy",
        "--record",
        "--metrics-json",
        path.to_str().unwrap(),
    ]);
    assert_eq!(code, 0, "record mode completes; stderr: {stderr}");
    let json = std::fs::read_to_string(&path).expect("metrics written");
    taintvp::obs::export::validate_json(&json).expect("metrics JSON parses");
    assert!(json.contains("\"schema\": \"taintvp-metrics/v1\""), "schema tag: {json}");
    assert!(json.contains("\"instructions\""), "counter present: {json}");
    let _ = std::fs::remove_file(&path);
}

/// Pipes a request script into `taintvp-run serve` over stdio and returns
/// (exit code, stdout lines).
fn run_serve_script(script: &str) -> (i32, Vec<String>) {
    use std::io::Write as _;
    let mut child = Command::new(env!("CARGO_BIN_EXE_taintvp-run"))
        .arg("serve")
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .stdin(std::process::Stdio::piped())
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("serve child spawns");
    child.stdin.take().expect("piped stdin").write_all(script.as_bytes()).expect("script written");
    let out = child.wait_with_output().expect("serve child exits");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).lines().map(str::to_owned).collect(),
    )
}

#[test]
fn serve_subcommand_speaks_the_protocol_over_stdio() {
    let program = taintvp::obs::export::escape(
        &std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/docs/examples/immo_leak.s"))
            .expect("demo program"),
    );
    let policy = taintvp::obs::export::escape(
        &std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/docs/examples/immobilizer.policy"
        ))
        .expect("demo policy"),
    );
    let script = format!(
        "{{\"id\":1,\"cmd\":\"create\",\"session\":\"immo\",\"program\":\"{program}\",\
         \"policy\":\"{policy}\",\"enforce\":\"record\",\"ram_size\":65536}}\n\
         {{\"id\":2,\"cmd\":\"watch\",\"session\":\"immo\",\"kind\":\"sink\",\"site\":\"uart.tx\"}}\n\
         {{\"id\":3,\"cmd\":\"run\",\"session\":\"immo\",\"max_steps\":100000}}\n\
         {{\"id\":4,\"cmd\":\"shutdown\"}}\n"
    );
    let (code, lines) = run_serve_script(&script);
    assert_eq!(code, 0, "clean shutdown: {lines:?}");
    assert!(
        lines.first().is_some_and(|l| l.contains("\"schema\":\"taintvp-serve/v2\"")
            && l.contains("\"compat\":[\"taintvp-serve/v1\"]")),
        "v2 greeting with v1 compat first: {lines:?}"
    );
    assert!(
        lines.iter().any(|l| l.contains("\"ev\":\"watch\"") && l.contains("uart.tx")),
        "watch hit streamed: {lines:?}"
    );
    assert!(
        lines.iter().any(|l| l.contains("\"id\":3") && l.contains("\"exit\":\"stopped\"")),
        "watchpoint paused the run: {lines:?}"
    );
    for line in &lines {
        taintvp::obs::export::validate_json(line)
            .unwrap_or_else(|e| panic!("bad line `{line}`: {e}"));
    }
}

#[test]
fn serve_exits_cleanly_on_client_eof() {
    // No shutdown request — closing stdin must still terminate the server.
    let (code, lines) = run_serve_script("{\"id\":1,\"cmd\":\"list\"}\n");
    assert_eq!(code, 0, "EOF ends the stdio session: {lines:?}");
    assert!(lines.iter().any(|l| l.contains("\"sessions\":[]")), "{lines:?}");
}

#[test]
fn client_subcommand_drives_a_spawned_server() {
    let script_path = std::env::temp_dir().join("taintvp_cli_client.jsonl");
    std::fs::write(
        &script_path,
        "{\"id\":1,\"cmd\":\"create\",\"session\":\"s\",\"program\":\"ebreak\",\"ram_size\":65536}\n\
         {\"id\":2,\"cmd\":\"until\",\"session\":\"s\"}\n\
         {\"id\":3,\"cmd\":\"shutdown\"}\n",
    )
    .expect("script written");
    let (code, stdout, stderr) = run_cli(&["client", "--script", script_path.to_str().unwrap()]);
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(stdout.contains("\"schema\":\"taintvp-serve/v2\""), "greeting echoed: {stdout}");
    assert!(
        stdout.contains("\"id\":2") && stdout.contains("\"exit\":\"break\""),
        "run response echoed: {stdout}"
    );
    let _ = std::fs::remove_file(&script_path);
}

/// Emits a small ELF with distinct symbols into a temp file. The guest
/// prints one UART byte from `emit` so `--profile`/`--explain` have both
/// I/O and symbol structure to attribute.
fn write_demo_elf(name: &str) -> std::path::PathBuf {
    use taintvp::asm::{Asm, Reg};
    let mut a = Asm::new(0);
    a.label("main");
    a.entry();
    a.li(Reg::S0, 40);
    a.label("work");
    a.call("emit");
    a.addi(Reg::S0, Reg::S0, -1);
    a.bnez(Reg::S0, "work");
    a.ebreak();
    a.label("emit");
    a.li(Reg::T0, 0x1000_0000u32 as i32); // UART tx
    a.li(Reg::T1, b'.' as i32);
    a.sw(Reg::T1, 0, Reg::T0);
    a.ret();
    let path = std::env::temp_dir().join(name);
    std::fs::write(&path, a.to_elf().expect("demo ELF assembles")).expect("ELF written");
    path
}

#[test]
fn elf_guest_runs_end_to_end_with_symbolized_profile() {
    let path = write_demo_elf("taintvp_cli_demo.elf");
    let (code, stdout, stderr) = run_cli(&[path.to_str().unwrap(), "--profile", "--dump-uart-hex"]);
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(stderr.contains("clean exit"), "{stderr}");
    assert!(stdout.contains("uart[40]"), "all 40 UART bytes arrive: {stdout}");
    // Profile attribution (on stderr) uses the names from the ELF `.symtab`.
    assert!(stderr.contains("main"), "profile names `main`: {stderr}");
    assert!(stderr.contains("emit"), "profile names `emit`: {stderr}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn malformed_elf_exits_8_with_a_typed_error() {
    // The ELF magic makes the CLI take the loader path; the truncated
    // header must surface as a loader error, not a panic or a parse of
    // the bytes as assembly text.
    let path = std::env::temp_dir().join("taintvp_cli_truncated.elf");
    std::fs::write(&path, [0x7F, b'E', b'L', b'F', 1, 1]).expect("stub written");
    let (code, _stdout, stderr) = run_cli(&[path.to_str().unwrap()]);
    assert_eq!(code, 8, "loader errors use their own exit code: {stderr}");
    assert!(stderr.contains("error:"), "{stderr}");
    assert!(stderr.contains("truncated"), "names the defect: {stderr}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn taint_segment_flag_classifies_elf_ingress() {
    let path = write_demo_elf("taintvp_cli_taintseg.elf");
    // Tag segment 0 with atom bit 2; the guest copies segment bytes to the
    // UART, so in permissive mode the run stays clean but the taint flows.
    let (code, _stdout, stderr) =
        run_cli(&[path.to_str().unwrap(), "--taint-segment", "0:2", "--metrics"]);
    assert_eq!(code, 0, "stderr: {stderr}");

    // Out-of-range segment index is a usage error, not a loader error.
    let (code, _stdout, stderr) = run_cli(&[path.to_str().unwrap(), "--taint-segment", "7:2"]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("1 loadable segment"), "{stderr}");

    // And the flag is meaningless for assembly guests.
    let (code, _stdout, stderr) = run_cli(&["docs/examples/leak.s", "--taint-segment", "0:2"]);
    assert_eq!(code, 1, "{stderr}");
    assert!(stderr.contains("only applies to ELF"), "{stderr}");
    let _ = std::fs::remove_file(&path);
}
