//! End-to-end tests of the `taintvp-run` CLI binary.

use std::process::Command;

fn run_cli(args: &[&str]) -> (i32, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_taintvp-run"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("CLI binary runs");
    (
        out.status.code().unwrap_or(-1),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

#[test]
fn enforced_leak_exits_2_with_diagnostics() {
    let (code, _stdout, stderr) =
        run_cli(&["docs/examples/leak.s", "--policy", "docs/examples/leak.policy"]);
    assert_eq!(code, 2, "violation exit code");
    assert!(stderr.contains("DIFT violation"));
    assert!(stderr.contains("[secret]"), "atom names resolved: {stderr}");
    assert!(stderr.contains("[public]"));
}

#[test]
fn plain_mode_runs_clean() {
    let (code, stdout, stderr) = run_cli(&["docs/examples/leak.s", "--plain", "--dump-uart-hex"]);
    assert_eq!(code, 0, "stderr: {stderr}");
    assert!(stdout.contains("uart[1]"));
    assert!(stderr.contains("clean exit"));
}

#[test]
fn record_mode_logs_and_traces() {
    let (code, _stdout, stderr) = run_cli(&[
        "docs/examples/leak.s",
        "--policy",
        "docs/examples/leak.policy",
        "--record",
        "--trace",
        "2",
    ]);
    assert_eq!(code, 0, "record mode completes");
    assert!(stderr.contains("recorded violation"));
    assert!(stderr.contains("0x00000000: lui"), "trace lines present: {stderr}");
}

#[test]
fn usage_errors_exit_1() {
    let (code, _, stderr) = run_cli(&[]);
    assert_eq!(code, 1);
    assert!(stderr.contains("usage"));

    let (code, _, stderr) = run_cli(&["/nonexistent.s"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("cannot read"));

    let (code, _, stderr) = run_cli(&["docs/examples/leak.s", "--bogus"]);
    assert_eq!(code, 1);
    assert!(stderr.contains("unknown option"));
}

#[test]
fn input_escapes_reach_the_terminal() {
    // docs/examples/echo_once.s echoes one console byte; feed it \x41.
    let (code, stdout, _) = run_cli(&["docs/examples/echo_once.s", "--plain", "--input", "\\x41"]);
    assert_eq!(code, 0);
    assert!(stdout.contains('A'));
}
