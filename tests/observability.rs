//! End-to-end tests of the observability layer: a tainted program run to a
//! violation must produce a flight report naming the classified source
//! region and the failed check, and the exporters must emit parseable
//! output — both through the library API and the `taintvp-run` CLI.

use std::process::Command;

use taintvp::asm::parse_asm;
use taintvp::core::parse_policy;
use taintvp::core::EnforceMode;
use taintvp::obs::export::{validate_json, write_chrome_trace, write_jsonl};
use taintvp::obs::{CheckKind, Recorder, StopFlag, StreamItem, StreamSink, WatchKind};
use taintvp::prelude::{shared, Shared, Soc, SocBuilder, SocExit};
use taintvp::rv32::Tainted;

const LEAK_ASM: &str = "
        li   t0, 0x2000         # the (classified) key
        lbu  t1, 0(t0)
        li   t2, 0x10000000     # UART
        sw   t1, 0(t2)
        ebreak
";

const LEAK_POLICY: &str = "
policy obs-test
atom secret
classify 0x2000 +16 secret
sink uart.tx public
";

fn leak_to_violation() -> (Shared<Recorder>, taintvp::core::AtomTable, SocExit) {
    let (policy, atoms) = parse_policy(LEAK_POLICY).expect("policy parses");
    let program = parse_asm(LEAK_ASM, 0).expect("program assembles");
    let rec = shared(Recorder::new(16).with_event_log());
    let cfg = SocBuilder::new().policy(policy).sensor_thread(false).build();
    let mut soc: Soc<Tainted, Recorder> = Soc::with_obs(cfg, rec.clone());
    soc.load_program(&program);
    let exit = soc.run(1_000);
    (rec, atoms, exit)
}

#[test]
fn flight_report_names_source_region_and_failed_check() {
    let (rec, atoms, exit) = leak_to_violation();
    assert!(matches!(exit, SocExit::Violation(_)), "got {exit:?}");

    let rec = rec.borrow();
    let report = rec.flight_report(&atoms).expect("violation produces a report");
    assert!(report.contains("== DIFT violation flight report =="), "{report}");
    // The failed check kind…
    assert!(report.contains("failed check: output"), "{report}");
    // …and the provenance of the offending tag: the policy's classified
    // region, by rule name and address.
    assert!(report.contains("classified by `classify@0x2000`"), "{report}");
    assert!(report.contains("0x00002000"), "{report}");
    assert!(report.contains("secret"), "atom name resolved: {report}");
}

#[test]
fn recorder_metrics_cover_the_run() {
    let (rec, _atoms, _exit) = leak_to_violation();
    let rec = rec.borrow();
    let m = rec.metrics();
    assert!(m.instructions > 0);
    assert_eq!(m.violations, 1);
    assert_eq!(m.classifications, 1, "one classified region");
    let output = &m.checks[CheckKind::Output.index()];
    assert_eq!(output.failed, 1, "the uart sink check failed once");
    assert!(m.taint_high_water[0] >= 16, "16 key bytes tagged secret");
    let summary = m.to_string();
    assert!(summary.contains("== DIFT metrics =="), "{summary}");
}

#[test]
fn exporters_emit_parseable_output() {
    let (rec, _atoms, _exit) = leak_to_violation();
    let rec = rec.borrow();
    assert!(!rec.events().is_empty(), "event log captured the run");

    let mut jsonl = Vec::new();
    write_jsonl(&mut jsonl, rec.events()).unwrap();
    let jsonl = String::from_utf8(jsonl).unwrap();
    assert_eq!(jsonl.lines().count(), rec.events().len());
    for line in jsonl.lines() {
        validate_json(line).unwrap_or_else(|e| panic!("bad JSONL line `{line}`: {e}"));
    }
    // The violation itself is exported.
    assert!(jsonl.contains("\"kind\":\"violation\""), "{jsonl}");

    let mut trace = Vec::new();
    write_chrome_trace(&mut trace, rec.events()).unwrap();
    let trace = String::from_utf8(trace).unwrap();
    validate_json(&trace).expect("chrome trace is one JSON document");
    assert!(trace.contains("\"traceEvents\""));
}

// ---------------------------------------------------------------- CLI ---

fn run_cli(args: &[&str]) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_taintvp-run"))
        .args(args)
        .current_dir(env!("CARGO_MANIFEST_DIR"))
        .output()
        .expect("CLI binary runs");
    (out.status.code().unwrap_or(-1), String::from_utf8_lossy(&out.stderr).into_owned())
}

#[test]
fn cli_violation_exit_prints_flight_report_and_metrics() {
    let (code, stderr) = run_cli(&[
        "docs/examples/leak.s",
        "--policy",
        "docs/examples/leak.policy",
        "--flight-recorder",
        "16",
        "--metrics",
    ]);
    assert_eq!(code, 2, "violation exit code: {stderr}");
    assert!(stderr.contains("== DIFT violation flight report =="), "{stderr}");
    assert!(stderr.contains("failed check: output"), "{stderr}");
    assert!(stderr.contains("classified by `classify@0x2000`"), "{stderr}");
    assert!(stderr.contains("== DIFT metrics =="), "{stderr}");
}

#[test]
fn cli_writes_event_and_chrome_trace_files() {
    let dir = std::env::temp_dir();
    let events = dir.join(format!("taintvp-obs-{}.jsonl", std::process::id()));
    let chrome = dir.join(format!("taintvp-obs-{}.json", std::process::id()));
    let (code, stderr) = run_cli(&[
        "docs/examples/leak.s",
        "--policy",
        "docs/examples/leak.policy",
        "--events-out",
        events.to_str().unwrap(),
        "--chrome-trace",
        chrome.to_str().unwrap(),
    ]);
    assert_eq!(code, 2, "{stderr}");
    let jsonl = std::fs::read_to_string(&events).expect("events file written");
    assert!(!jsonl.is_empty());
    for line in jsonl.lines() {
        validate_json(line).unwrap_or_else(|e| panic!("bad JSONL line `{line}`: {e}"));
    }
    let trace = std::fs::read_to_string(&chrome).expect("chrome trace written");
    validate_json(&trace).expect("chrome trace parses");
    let _ = std::fs::remove_file(&events);
    let _ = std::fs::remove_file(&chrome);
}

#[test]
fn cli_without_obs_flags_behaves_as_before() {
    let (code, stderr) =
        run_cli(&["docs/examples/leak.s", "--policy", "docs/examples/leak.policy"]);
    assert_eq!(code, 2);
    assert!(!stderr.contains("flight report"), "{stderr}");
    assert!(!stderr.contains("== DIFT metrics =="), "{stderr}");
}

/// A four-byte leak loop so a watchpoint can interrupt the transfer
/// mid-way: each iteration copies one classified byte to the UART.
const LEAK_LOOP_ASM: &str = "
        li   s0, 0x2000         # the (classified) key
        li   s1, 0x10000000     # UART
        li   s2, 4
loop:
        lbu  t0, 0(s0)
        sb   t0, 0(s1)
        addi s0, s0, 1
        addi s2, s2, -1
        bnez s2, loop
        ebreak
";

#[test]
fn sink_watchpoint_stops_the_leak_mid_run_and_resumes() {
    let (policy, _atoms) = parse_policy(LEAK_POLICY).expect("policy parses");
    let program = parse_asm(LEAK_LOOP_ASM, 0).expect("program assembles");

    let stop = StopFlag::new();
    let mut sink = StreamSink::new(Recorder::new(16), stop.clone());
    let watch_id = sink.add_watch(WatchKind::Sink { site: "uart.tx".into(), atom: None });
    let sink = shared(sink);

    // Record mode: without the watchpoint the whole 4-byte leak runs to
    // completion; the watch must be what stops it.
    let cfg = SocBuilder::new()
        .policy(policy)
        .enforce(EnforceMode::Record)
        .sensor_thread(false)
        .stop_flag(stop)
        .build();
    let mut soc: Soc<Tainted, StreamSink> = Soc::with_obs(cfg, sink.clone());
    soc.load_program(&program);

    let exit = soc.run(1_000);
    assert_eq!(exit, SocExit::Stopped, "watch interrupts the run");
    assert_eq!(
        soc.uart().borrow().output().len(),
        1,
        "stopped after the first leaked byte, before the transfer completed"
    );
    let items = sink.borrow_mut().drain();
    assert!(
        items.iter().any(|i| matches!(i, StreamItem::Watch { id, .. } if *id == watch_id)),
        "stream carries the watch hit: {items:?}"
    );

    // The stop is cooperative: the same Soc resumes and the watch fires
    // again on the next leaked byte.
    let exit = soc.run(1_000);
    assert_eq!(exit, SocExit::Stopped, "resumed run hits the watch again");
    assert_eq!(soc.uart().borrow().output().len(), 2);

    // Removing the watch lets the program run to its ebreak.
    assert!(sink.borrow_mut().remove_watch(watch_id));
    let exit = soc.run(1_000);
    assert_eq!(exit, SocExit::Break);
    assert_eq!(soc.uart().borrow().output().len(), 4, "full leak once unwatched");
}
