//! Integration tests for the ELF ingestion path at SoC level: a binary
//! loaded from an ELF image must be indistinguishable from the same
//! program loaded through the DSL front end — same execution, same
//! profiler attribution (the `.symtab` round trip feeds the same
//! `SymbolMap`), same taint behaviour — and images that don't fit the
//! platform RAM must be rejected *before* any byte is written.

use taintvp::asm::{Asm, Reg};
use taintvp::core::Tag;
use taintvp::loader::{Elf32, Segment};
use taintvp::obs::{Recorder, SymbolMap};
use taintvp::prelude::{shared, Soc, SocExit};
use taintvp::rv32::{Plain, Tainted};
use taintvp::soc::ElfLoadError;

/// A guest with two distinct hot functions, so the folded flamegraph has
/// real shape to compare: `main` calls `hot_a` 30× and `hot_b` 10×.
fn twin_guest() -> Asm {
    let mut a = Asm::new(0);
    a.label("main");
    a.entry();
    a.li(Reg::S0, 30);
    a.label("loop_a");
    a.call("hot_a");
    a.addi(Reg::S0, Reg::S0, -1);
    a.bnez(Reg::S0, "loop_a");
    a.li(Reg::S0, 10);
    a.label("loop_b");
    a.call("hot_b");
    a.addi(Reg::S0, Reg::S0, -1);
    a.bnez(Reg::S0, "loop_b");
    a.ebreak();
    a.label("hot_a");
    a.li(Reg::T0, 8);
    a.label("spin_a");
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, "spin_a");
    a.ret();
    a.label("hot_b");
    a.li(Reg::T0, 4);
    a.label("spin_b");
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, "spin_b");
    a.ret();
    a
}

/// Runs a guest with the profiler attached; `load` does the image
/// ingestion (DSL program vs parsed ELF). Returns the folded flamegraph.
fn profiled_run(
    symbols: SymbolMap,
    load: impl FnOnce(&mut Soc<Tainted, Recorder>),
) -> (SocExit, String, Vec<(String, u64)>) {
    let rec = shared(Recorder::new(64).with_symbols(symbols).with_profiler());
    let cfg = Soc::<Tainted>::builder().sensor_thread(false).build();
    let mut soc: Soc<Tainted, Recorder> = Soc::with_obs(cfg, rec.clone());
    load(&mut soc);
    let exit = soc.run(100_000);
    let rec = rec.borrow();
    let prof = rec.profiler().expect("profiler attached");
    (exit, prof.folded_output(), prof.flat())
}

#[test]
fn elf_twin_and_dsl_twin_profile_identically() {
    let program = twin_guest().assemble().expect("twin assembles");
    let elf = Elf32::parse(&program.to_elf()).expect("emitted ELF parses");

    // DSL path: symbols straight from the assembler's `Program`.
    let (dsl_exit, dsl_folded, dsl_flat) =
        profiled_run(SymbolMap::from_program(&program), |soc| soc.load_program(&program));

    // ELF path: symbols from the parsed `.symtab`, image from `PT_LOAD`.
    let (elf_exit, elf_folded, elf_flat) =
        profiled_run(SymbolMap::from_symbols(elf.symbols.clone()), |soc| {
            soc.load_elf(&elf).expect("image fits RAM")
        });

    assert_eq!(dsl_exit, SocExit::Break);
    assert_eq!(elf_exit, SocExit::Break);
    assert_eq!(elf_folded, dsl_folded, "folded flamegraphs must match line for line");
    assert_eq!(elf_flat, dsl_flat, "flat symbol attribution must match");

    // And the attribution is real: both hot functions appear, with the
    // 30×8 loop dominating the 10×4 one.
    let sample =
        |name: &str| elf_flat.iter().find(|(n, _)| n == name).map(|(_, c)| *c).unwrap_or_default();
    assert!(sample("hot_a") > sample("hot_b"), "hot_a must out-sample hot_b: {elf_flat:?}");
    assert!(sample("hot_b") > 0, "hot_b attributed at all");
    assert!(elf_folded.contains("hot_a"), "folded output names hot_a: {elf_folded}");
}

#[test]
fn load_elf_rejects_images_outside_ram() {
    // 1 KiB of RAM; a segment placed at 4 KiB cannot fit.
    let mut a = Asm::new(0x1000);
    a.entry();
    a.ebreak();
    let elf = Elf32::parse(&a.to_elf().unwrap()).unwrap();

    let cfg = Soc::<Plain>::builder().sensor_thread(false).ram_size(1024).build();
    let mut soc = Soc::<Plain>::new(cfg);
    let before = soc.state_digest();
    let err = soc.load_elf(&elf).expect_err("segment at 0x1000 exceeds 1 KiB RAM");
    assert!(matches!(err, ElfLoadError::SegmentOutsideRam { index: 0, .. }), "got {err}");
    // A failed load is atomic: nothing was written.
    assert_eq!(soc.state_digest(), before, "failed load must not touch state");
    // The error formats usefully for the CLI.
    assert!(err.to_string().contains("0x00001000"), "{err}");
}

#[test]
fn load_elf_with_classifies_segments_on_ingress() {
    // Code segment plus a data blob; the ingress hook tags the data
    // segment's bytes, and a load from it must propagate that tag.
    let mut a = Asm::new(0);
    a.entry();
    a.la(Reg::T0, "blob");
    a.lw(Reg::T1, 0, Reg::T0);
    a.sw(Reg::T1, 0x100, Reg::Zero); // copy: the tag must travel
    a.ebreak();
    a.align(4);
    a.label("blob");
    a.word(0x1234_5678);
    let elf = Elf32::parse(&a.to_elf().unwrap()).unwrap();

    let secret = Tag::from_bits(0b100);
    let cfg = Soc::<Tainted>::builder().sensor_thread(false).build();
    let mut soc = Soc::<Tainted>::new(cfg);
    // The emitter produces one RWX segment, so the hook sees index 0 and
    // may inspect the segment before deciding.
    soc.load_elf_with(&elf, |index, seg: &Segment| {
        assert_eq!(index, 0);
        assert!(seg.is_exec());
        secret
    })
    .expect("image fits RAM");
    assert_eq!(soc.run(1_000), SocExit::Break);
    let copied = soc.ram().borrow().load(0x100, 4);
    assert_eq!(copied.0, 0x1234_5678);
    assert_eq!(copied.1, secret, "ingress tag must propagate through the copy");
}
