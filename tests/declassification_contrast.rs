//! The declassification design point, demonstrated: the *same* encryption
//! of the *same* secret key either may or may not leave the system,
//! depending on whether it ran in the trusted AES peripheral (which holds
//! the policy's declassification grant) or in guest software (which cannot
//! declassify — DIFT correctly sees every ciphertext byte depend on the
//! key). This is why the paper's threat model puts declassification in
//! hardware only.

use taintvp::asm::{Asm, Reg};
use taintvp::core::{AddrRange, SecurityPolicy, Tag, ViolationKind};
use taintvp::firmware::aes_soft::{emit_aes_data, emit_aes_encrypt};
use taintvp::firmware::rt::emit_runtime;
use taintvp::prelude::{map, Soc, SocBuilder, SocExit};
use taintvp::rv32::Tainted;

use Reg::*;

const SECRET: Tag = Tag::from_bits(0b01);
const UNTRUSTED: Tag = Tag::from_bits(0b10);

fn policy() -> SecurityPolicy {
    SecurityPolicy::builder("contrast")
        .classify_region("key", AddrRange::new(0x4000, 16), SECRET)
        .sink("uart.tx", UNTRUSTED)
        .source("aes.out", UNTRUSTED)
        .allow_declassify("aes")
        .build()
}

/// Guest that encrypts the key region's secret key over a fixed plaintext
/// *in software* and transmits the first ciphertext byte.
fn soft_crypto_program() -> taintvp::asm::Program {
    let mut a = Asm::new(0);
    a.entry();
    a.li(A0, 0x4000); // secret key in RAM
    a.la(A1, "pt");
    a.la(A2, "ct");
    a.call("aes_encrypt");
    a.la(T0, "ct");
    a.lbu(T1, 0, T0);
    a.li(T2, map::UART_BASE as i32);
    a.sw(T1, 0, T2); // transmit ciphertext byte
    a.ebreak();
    emit_aes_encrypt(&mut a);
    emit_runtime(&mut a);
    emit_aes_data(&mut a);
    a.align(4);
    a.label("pt");
    a.bytes(&[0u8; 16]);
    a.label("ct");
    a.zero(16);
    a.assemble().unwrap()
}

/// Guest doing the same through the AES peripheral.
fn hw_crypto_program() -> taintvp::asm::Program {
    let mut a = Asm::new(0);
    a.li(S0, 0x4000);
    a.li(S1, map::AES_BASE as i32);
    a.li(T0, 0);
    a.label("key");
    a.add(T1, S0, T0);
    a.lbu(T2, 0, T1);
    a.add(T1, S1, T0);
    a.sb(T2, 0, T1); // KEY window
    a.addi(T0, T0, 1);
    a.li(T3, 16);
    a.blt(T0, T3, "key");
    a.li(T0, 1);
    a.sw(T0, 0x30, S1); // encrypt
    a.lbu(T1, 0x20, S1); // first ciphertext byte (declassified)
    a.li(T2, map::UART_BASE as i32);
    a.sw(T1, 0, T2);
    a.ebreak();
    a.assemble().unwrap()
}

fn run(prog: &taintvp::asm::Program) -> (SocExit, usize, [u8; 16]) {
    let cfg = SocBuilder::new().policy(policy()).sensor_thread(false).build();
    let mut soc = Soc::<Tainted>::new(cfg);
    soc.load_program(prog);
    let key: [u8; 16] = *b"sixteen byte key";
    soc.ram().borrow_mut().load_image(0x4000, &key);
    soc.ram().borrow_mut().classify(0x4000, 16, SECRET);
    let exit = soc.run(10_000_000);
    let n = soc.uart().borrow().output().len();
    (exit, n, key)
}

#[test]
fn software_crypto_cannot_declassify() {
    let (exit, uart_len, key) = run(&soft_crypto_program());
    match exit {
        SocExit::Violation(v) => {
            assert_eq!(v.kind, ViolationKind::Output { sink: "uart.tx".into() });
            assert_eq!(v.tag, SECRET, "ciphertext carries the key's tag");
        }
        other => panic!("software ciphertext escaped: {other:?}"),
    }
    assert_eq!(uart_len, 0, "nothing left the system");

    // Sanity: the software encryption was *correct* — compare against the
    // host AES over the same key/plaintext. Taint, not math, blocked it.
    let expected = taintvp::periph::Aes128::new(&key).encrypt_block(&[0u8; 16]);
    assert_ne!(expected[0], 0);
}

#[test]
fn hardware_crypto_declassifies_and_transmits() {
    let (exit, uart_len, _) = run(&hw_crypto_program());
    assert_eq!(exit, SocExit::Break);
    assert_eq!(uart_len, 1, "declassified ciphertext byte transmitted");
}

#[test]
fn software_and_hardware_compute_the_same_ciphertext() {
    // Run the software path under a permissive policy and compare the
    // full ciphertext with the host model — the guest AES is real AES.
    let cfg = SocBuilder::new().policy(SecurityPolicy::permissive()).sensor_thread(false).build();
    let mut soc = Soc::<Tainted>::new(cfg);
    let prog = soft_crypto_program();
    soc.load_program(&prog);
    let key: [u8; 16] = *b"sixteen byte key";
    soc.ram().borrow_mut().load_image(0x4000, &key);
    assert_eq!(soc.run(10_000_000), SocExit::Break);
    let ct_addr = prog.symbol("ct").unwrap();
    let ram = soc.ram().borrow();
    let got: Vec<u8> = (0..16).map(|i| ram.byte_at(ct_addr + i).unwrap().0).collect();
    let expected = taintvp::periph::Aes128::new(&key).encrypt_block(&[0u8; 16]);
    assert_eq!(got, expected);
}
