//! Workspace-level integration tests: full flows spanning every crate,
//! exercised through the umbrella `taintvp` API.

use taintvp::asm::{Asm, Reg};
use taintvp::core::{ifp, AddrRange, EnforceMode, SecurityPolicy, Tag, ViolationKind};
use taintvp::prelude::{map, Soc, SocBuilder, SocExit};
use taintvp::rv32::{Plain, Tainted, Word};

use Reg::*;

/// A secret may be *processed* freely but caught exactly at the output
/// boundary — end-to-end across assembler, ISS, bus, policy and UART.
#[test]
fn secret_laundering_through_arithmetic_is_still_caught() {
    let secret = Tag::atom(0);
    let policy = SecurityPolicy::builder("laundering")
        .classify_region("key", AddrRange::new(0x2000, 4), secret)
        .sink("uart.tx", Tag::EMPTY)
        .build();

    let mut a = Asm::new(0);
    a.li(T0, 0x2000);
    a.lw(T1, 0, T0);
    // "Launder" the secret: xor with itself-shifted, multiply, mask.
    a.slli(T2, T1, 7);
    a.xor(T1, T1, T2);
    a.li(T3, 0x9E37);
    a.mul(T1, T1, T3);
    a.andi(T1, T1, 0xFF);
    a.li(T4, map::UART_BASE as i32);
    a.sw(T1, 0, T4);
    a.ebreak();
    let prog = a.assemble().unwrap();

    let mut soc = Soc::<Tainted>::new(SocBuilder::new().policy(policy).build());
    soc.load_program(&prog);
    match soc.run(10_000) {
        SocExit::Violation(v) => {
            assert_eq!(v.kind, ViolationKind::Output { sink: "uart.tx".into() })
        }
        other => panic!("laundered secret escaped: {other:?}"),
    }
}

/// The full IFP-3 lattice drives a real SoC run: data classified with the
/// compiled `(HC,HI)` tag is blocked at a `(LC,LI)`-cleared sink.
#[test]
fn compiled_ifp3_tags_work_on_the_soc() {
    let tags = ifp::ifp3_tags();
    let policy = SecurityPolicy::builder("ifp3")
        .classify_region("key", AddrRange::new(0x2000, 4), tags.secret)
        .source("terminal.rx", tags.untrusted)
        .sink("uart.tx", tags.untrusted)
        .build();

    // Echoing untrusted input is fine; echoing the key is not.
    let mut a = Asm::new(0);
    a.li(T0, map::TERMINAL_BASE as i32);
    a.lw(T1, 0, T0); // untrusted byte
    a.li(T2, map::UART_BASE as i32);
    a.sw(T1, 0, T2); // allowed: (LC,LI) -> (LC,LI)
    a.li(T0, 0x2000);
    a.lw(T1, 0, T0);
    a.sw(T1, 0, T2); // blocked: (HC,HI) -/-> (LC,LI)
    a.ebreak();
    let prog = a.assemble().unwrap();

    let mut soc = Soc::<Tainted>::new(SocBuilder::new().policy(policy).build());
    soc.load_program(&prog);
    soc.terminal().borrow_mut().feed(b"x");
    match soc.run(10_000) {
        SocExit::Violation(v) => {
            assert_eq!(v.kind, ViolationKind::Output { sink: "uart.tx".into() });
        }
        other => panic!("expected violation, got {other:?}"),
    }
    assert_eq!(soc.uart().borrow().output(), b"x", "untrusted echo passed first");
}

/// Record mode audits a whole run without stopping it, across CPU and
/// peripheral check sites.
#[test]
fn record_mode_full_audit() {
    let secret = Tag::atom(0);
    let policy = SecurityPolicy::builder("audit")
        .classify_region("key", AddrRange::new(0x2000, 2), secret)
        .sink("uart.tx", Tag::EMPTY)
        .branch_clearance(Tag::EMPTY)
        .build();
    let mut a = Asm::new(0);
    a.li(T0, 0x2000);
    a.lbu(T1, 0, T0);
    a.beqz(T1, "skip"); // branch violation 1
    a.label("skip");
    a.li(T2, map::UART_BASE as i32);
    a.sw(T1, 0, T2); // output violation 2
    a.lbu(T1, 1, T0);
    a.sw(T1, 0, T2); // output violation 3
    a.ebreak();
    let prog = a.assemble().unwrap();

    let cfg = SocBuilder::new().policy(policy).enforce(EnforceMode::Record).build();
    let mut soc = Soc::<Tainted>::new(cfg);
    soc.load_program(&prog);
    assert_eq!(soc.run(10_000), SocExit::Break);
    let engine = soc.engine().borrow();
    assert_eq!(engine.violations().len(), 3);
    assert_eq!(engine.violations()[0].kind, ViolationKind::Branch);
    assert!(engine.stats().failed >= 3);
}

/// The same binary, bit-for-bit, runs on both VP flavours with identical
/// architectural results — the transparency claim of §V.
#[test]
fn vp_and_vp_plus_agree_on_a_nontrivial_program() {
    let w = taintvp::firmware::qsort::build(200, 1);
    let run = |tainted: bool| -> (Vec<u8>, u64) {
        if tainted {
            let mut soc = Soc::<Tainted>::new(SocBuilder::new().build());
            soc.load_program(&w.program);
            assert_eq!(soc.run(w.max_insns), SocExit::Break);
            let out = soc.uart().borrow().output().to_vec();
            (out, soc.instret())
        } else {
            let mut soc = Soc::<Plain>::new(SocBuilder::new().build());
            soc.load_program(&w.program);
            assert_eq!(soc.run(w.max_insns), SocExit::Break);
            let out = soc.uart().borrow().output().to_vec();
            (out, soc.instret())
        }
    };
    assert_eq!(run(false), run(true));
}

/// Declassification is the *only* way down: the AES peripheral's grant
/// lets ciphertext out, while the same data without the grant stays
/// confined. Spans policy, AES peripheral, TLM and the CPU.
#[test]
fn declassification_end_to_end() {
    let secret = Tag::atom(0);
    let build_prog = || {
        let mut a = Asm::new(0);
        // key <- secret region; in <- zeros; encrypt; first out byte -> UART.
        a.li(S0, 0x2000);
        a.li(S1, map::AES_BASE as i32);
        a.li(T0, 0);
        a.label("k");
        a.add(T1, S0, T0);
        a.lbu(T2, 0, T1);
        a.add(T1, S1, T0);
        a.sb(T2, 0, T1);
        a.addi(T0, T0, 1);
        a.li(T3, 16);
        a.blt(T0, T3, "k");
        a.li(T0, 1);
        a.sw(T0, 0x30, S1);
        a.lbu(A0, 0x20, S1);
        a.li(T1, map::UART_BASE as i32);
        a.sw(A0, 0, T1);
        a.ebreak();
        a.assemble().unwrap()
    };

    let base = SecurityPolicy::builder("declass")
        .classify_region("key", AddrRange::new(0x2000, 16), secret)
        .sink("uart.tx", Tag::EMPTY);

    // Without the grant: ciphertext keeps the key's tag and is blocked.
    let mut soc = Soc::<Tainted>::new(SocBuilder::new().policy(base.clone().build()).build());
    soc.load_program(&build_prog());
    assert!(matches!(soc.run(100_000), SocExit::Violation(_)));

    // With the grant: ciphertext is declassified to bottom and flows out.
    let policy = base.allow_declassify("aes").build();
    let mut soc = Soc::<Tainted>::new(SocBuilder::new().policy(policy).build());
    soc.load_program(&build_prog());
    assert_eq!(soc.run(100_000), SocExit::Break);
    assert_eq!(soc.uart().borrow().output().len(), 1);
}

/// Interrupt-driven data flow keeps its tags: sensor -> IRQ -> ISR ->
/// register — spanning kernel threads, PLIC, CPU interrupt logic and MMIO.
#[test]
fn tags_survive_interrupt_driven_flows() {
    let secret = Tag::atom(3);
    let policy = SecurityPolicy::builder("sensor-secret").source("sensor.data", secret).build();
    let prog = {
        use taintvp::asm::csr;
        let mut a = Asm::new(0);
        a.la(T0, "isr");
        a.csrw(csr::MTVEC, T0);
        a.li(T0, map::PLIC_BASE as i32);
        a.li(T1, 1 << map::IRQ_SENSOR);
        a.sw(T1, 4, T0);
        a.li(T1, csr::MIE_MEIE as i32);
        a.csrw(csr::MIE, T1);
        a.li(T1, csr::MSTATUS_MIE as i32);
        a.csrw(csr::MSTATUS, T1);
        a.wfi();
        a.ebreak();
        a.label("isr");
        a.li(T0, map::PLIC_BASE as i32);
        a.lw(T1, 8, T0); // claim
        a.li(T0, map::SENSOR_BASE as i32);
        a.lbu(A0, 0, T0); // tagged sensor byte
        a.mret();
        a.assemble().unwrap()
    };
    let mut soc = Soc::<Tainted>::new(SocBuilder::new().policy(policy).build());
    soc.load_program(&prog);
    assert_eq!(soc.run(1_000_000), SocExit::Break);
    assert_eq!(Word::tag(soc.cpu().reg(A0)), secret);
}
