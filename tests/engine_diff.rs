//! Differential harness: the predecoded block-cache engine must be
//! observationally identical to the reference interpreter.
//!
//! Every scenario runs twice — `ExecMode::Interp` and
//! `ExecMode::BlockCache` — and the harness asserts bit-identical
//! architectural state (register/CSR/RAM digest), the same `SocExit`, the
//! same violation reports, the same UART bytes and the same instruction
//! count. Covered: the full Wilander-Kamkar attack suite (malicious and
//! benign twins), the §VI-A immobilizer scenarios and protocol sessions,
//! the Table II plain/tainted workloads, and a self-modifying-code
//! regression where injected code is overwritten *after* being cached.

use taintvp::asm::{Asm, Reg};
use taintvp::attacks::{all_attacks, run_attack_captured};
use taintvp::firmware::table2_workloads;
use taintvp::immo::{run_scenario_with, run_session_with, PolicyKind, Scenario, Variant};
use taintvp::prelude::{ExecMode, Plain, Soc, SocExit, TaintMode, Tainted};

/// Runs one SoC program under both engines and returns
/// `(exit, uart, instret, digest)` per engine for comparison.
fn run_both<M: TaintMode>(
    prog: &taintvp::asm::Program,
    budget: u64,
) -> [(SocExit, Vec<u8>, u64, u64); 2] {
    [ExecMode::Interp, ExecMode::BlockCache].map(|mode| {
        let cfg = Soc::<M>::builder().sensor_thread(false).engine(mode).build();
        let mut soc = Soc::<M>::new(cfg);
        soc.load_program(prog);
        let exit = soc.run(budget);
        let uart = soc.uart().borrow().output().to_vec();
        (exit, uart, soc.instret(), soc.state_digest())
    })
}

#[test]
fn attack_suite_is_engine_invariant() {
    for attack in all_attacks() {
        if attack.form.is_none() {
            continue;
        }
        for benign in [false, true] {
            let interp = run_attack_captured(&attack, benign, ExecMode::Interp).unwrap();
            let cached = run_attack_captured(&attack, benign, ExecMode::BlockCache).unwrap();
            assert_eq!(interp, cached, "attack #{} (benign={benign}): engines disagree", attack.id);
        }
    }
}

#[test]
fn immobilizer_scenarios_are_engine_invariant() {
    for s in Scenario::ALL {
        for per_byte in [false, true] {
            let interp = run_scenario_with(s, per_byte, ExecMode::Interp);
            let cached = run_scenario_with(s, per_byte, ExecMode::BlockCache);
            assert_eq!(interp.detected, cached.detected, "{}: detection differs", s.name());
            assert_eq!(interp.violation, cached.violation, "{}: violation differs", s.name());
        }
    }
}

#[test]
fn immobilizer_sessions_are_engine_invariant() {
    for (variant, kind, rounds, console) in [
        (Variant::Fixed, PolicyKind::Coarse, 3, b"q".as_slice()),
        (Variant::Fixed, PolicyKind::PerByte, 2, b"q".as_slice()),
        (Variant::Vulnerable, PolicyKind::Coarse, 0, b"dq".as_slice()),
    ] {
        let interp = run_session_with::<Tainted>(variant, kind, rounds, console, ExecMode::Interp);
        let cached =
            run_session_with::<Tainted>(variant, kind, rounds, console, ExecMode::BlockCache);
        assert_eq!(interp.exit, cached.exit, "exit differs for {variant:?}/{kind:?}");
        assert_eq!(interp.authentications, cached.authentications);
        assert_eq!(interp.uart, cached.uart);
        assert_eq!(interp.instret, cached.instret);
        assert_eq!(interp.digest, cached.digest, "state digest differs for {variant:?}/{kind:?}");
    }
}

#[test]
fn table2_workloads_are_engine_invariant_on_both_vps() {
    for w in table2_workloads(1) {
        if w.needs_sensor {
            // The sensor thread is timing-driven, not step-driven; covered
            // by the session tests above. Keep this harness deterministic.
            continue;
        }
        let [pi, pc] = run_both::<Plain>(&w.program, w.max_insns);
        assert_eq!(pi, pc, "{}: plain VP engines disagree", w.name);
        let [ti, tc] = run_both::<Tainted>(&w.program, w.max_insns);
        assert_eq!(ti, tc, "{}: VP+ engines disagree", w.name);
        assert_eq!(pi.0, SocExit::Break, "{}: workload must complete", w.name);
    }
}

/// Self-modifying code at SoC level: a loop body is executed (and thus
/// cached), then the guest overwrites one of its instructions and runs it
/// again. The block cache must re-decode and match the interpreter.
#[test]
fn smc_overwrite_after_caching_is_engine_invariant() {
    let mut a = Asm::new(0);
    a.entry();
    a.li(Reg::A0, 0);
    a.li(Reg::S0, 3); // three passes over the patched region
    a.label("outer");
    a.label("patch");
    a.addi(Reg::A0, Reg::A0, 1); // becomes `addi a0, a0, 100` mid-run
    a.addi(Reg::S0, Reg::S0, -1);
    a.beqz(Reg::S0, "done");
    // After the first pass, rewrite the patch instruction.
    a.la(Reg::T0, "patch");
    a.li(Reg::T1, 0x0645_0513u32 as i32); // addi a0, a0, 100
    a.sw(Reg::T1, 0, Reg::T0);
    a.j("outer");
    a.label("done");
    a.ebreak();
    let prog = a.assemble().expect("smc guest assembles");

    let [pi, pc] = run_both::<Plain>(&prog, 1_000);
    assert_eq!(pi, pc, "plain VP engines disagree on SMC");
    let [ti, tc] = run_both::<Tainted>(&prog, 1_000);
    assert_eq!(ti, tc, "VP+ engines disagree on SMC");
    assert_eq!(pi.0, SocExit::Break);

    // Semantics check: pass 1 adds 1, passes 2 and 3 add 100 each.
    let cfg = Soc::<Plain>::builder().sensor_thread(false).engine(ExecMode::BlockCache).build();
    let mut soc = Soc::<Plain>::new(cfg);
    soc.load_program(&prog);
    assert_eq!(soc.run(1_000), SocExit::Break);
    assert_eq!(soc.cpu().reg(Reg::A0), 201, "patched add must take effect after caching");
    let stats = soc.engine_stats().expect("block cache stats");
    assert!(stats.invalidations > 0, "the overwrite must invalidate a cached block");
}

/// The block cache reports its statistics; on a hot loop nearly every
/// step is a cache hit, and on the plain VP no taint checks run at all.
#[test]
fn block_cache_stats_reflect_hot_loops() {
    let mut a = Asm::new(0);
    a.entry();
    a.li(Reg::T0, 20_000);
    a.label("spin");
    a.addi(Reg::T0, Reg::T0, -1);
    a.bnez(Reg::T0, "spin");
    a.ebreak();
    let prog = a.assemble().unwrap();
    let cfg = Soc::<Tainted>::builder().sensor_thread(false).engine(ExecMode::BlockCache).build();
    let mut soc = Soc::<Tainted>::new(cfg);
    soc.load_program(&prog);
    assert_eq!(soc.run(100_000), SocExit::Break);
    let stats = soc.engine_stats().expect("block cache stats");
    assert!(stats.hits > 10 * stats.misses.max(1), "hot loop must hit the cache");
    // Nothing classified and no tagged ingress: the whole run stays on the
    // taint-idle fast path.
    assert_eq!(stats.checked_steps, 0, "untainted run must not pay for checks");
    assert!(stats.idle_steps > 0);
}

/// The trap-loop detector (a guest wedged re-entering its own trap
/// handler after a bit flip turns a spin jump into a faulting opcode)
/// fires identically under both engines — previously only exercised on
/// the interpreter via the directed campaign scenario.
#[test]
fn trap_loop_detection_is_engine_invariant() {
    use taintvp::faults::{run_with_faults, FaultKind, PlannedFault};

    let results = [ExecMode::Interp, ExecMode::BlockCache].map(|mode| {
        let cfg = Soc::<Tainted>::builder().sensor_thread(false).engine(mode).build();
        let mut soc = Soc::<Tainted>::new(cfg);
        // `jal x0, 0`: spin-at-zero; the flipped bit 6 makes it faulting,
        // and with mtvec=0 every trap lands back on the broken opcode.
        soc.ram().borrow_mut().load_image(0, &0x0000_006Fu32.to_le_bytes());
        soc.cpu_mut().reset(0);
        let plan =
            vec![PlannedFault { at_step: 50, kind: FaultKind::RamDataFlip { offset: 0, bit: 6 } }];
        let (exit, _) = run_with_faults(&mut soc, 20_000, &plan);
        (exit, soc.instret(), soc.cpu().traps_taken(), soc.state_digest())
    });
    assert_eq!(results[0].0, SocExit::TrapLoop, "interpreter detects the trap loop");
    assert_eq!(results[1].0, SocExit::TrapLoop, "block cache detects the trap loop");
    assert_eq!(results[0], results[1], "engines disagree on trap-loop detection");
}

/// LR/SC under contention: reservations established in one cached block
/// and consumed (or killed) in another must behave identically across
/// engines — including the reservation state folded into the digest.
#[test]
fn lrsc_contention_is_engine_invariant() {
    let mut a = Asm::new(0);
    a.entry();
    let cell = 0x7000;
    a.li(Reg::S0, cell);
    a.sw(Reg::Zero, 0, Reg::S0);
    a.li(Reg::S1, 0); // SC-failure tally
                      // Round 1: clean LR/SC pair — must succeed.
    a.lr_w(Reg::T0, Reg::S0);
    a.addi(Reg::T0, Reg::T0, 1);
    a.sc_w(Reg::A0, Reg::T0, Reg::S0);
    a.add(Reg::S1, Reg::S1, Reg::A0);
    // Round 2: an intervening store "contends" and kills the reservation.
    a.lr_w(Reg::T0, Reg::S0);
    a.sw(Reg::T0, 64, Reg::S0);
    a.addi(Reg::T0, Reg::T0, 1);
    a.sc_w(Reg::A0, Reg::T0, Reg::S0);
    a.add(Reg::S1, Reg::S1, Reg::A0);
    // Round 3: reservation taken in one block, SC reached through a
    // branch in another — the cache must carry the reservation across
    // block boundaries.
    a.lr_w(Reg::T0, Reg::S0);
    a.beqz(Reg::Zero, "far_sc");
    a.ebreak(); // unreachable
    a.label("far_sc");
    a.addi(Reg::T0, Reg::T0, 1);
    a.sc_w(Reg::A0, Reg::T0, Reg::S0);
    a.add(Reg::S1, Reg::S1, Reg::A0);
    // Round 4: SC with no reservation at all.
    a.sc_w(Reg::A0, Reg::T0, Reg::S0);
    a.add(Reg::S1, Reg::S1, Reg::A0);
    a.lw(Reg::A1, 0, Reg::S0);
    a.ebreak();
    let prog = a.assemble().expect("lrsc guest assembles");

    let [pi, pc] = run_both::<Plain>(&prog, 1_000);
    assert_eq!(pi, pc, "plain VP engines disagree on LR/SC contention");
    let [ti, tc] = run_both::<Tainted>(&prog, 1_000);
    assert_eq!(ti, tc, "VP+ engines disagree on LR/SC contention");
    assert_eq!(pi.0, SocExit::Break);

    // Semantics: rounds 1 and 3 succeed, rounds 2 and 4 fail (tally 2),
    // so the cell ends at 2.
    let cfg = Soc::<Plain>::builder().sensor_thread(false).build();
    let mut soc = Soc::<Plain>::new(cfg);
    soc.load_program(&prog);
    assert_eq!(soc.run(1_000), SocExit::Break);
    assert_eq!(soc.cpu().reg(Reg::S1), 2, "exactly two SCs must fail");
    assert_eq!(soc.cpu().reg(Reg::A1), 2, "two successful increments");
}

/// Atomics on MMIO are access faults, not read-modify-writes with device
/// side effects — and the trap must look the same under both engines.
#[test]
fn amo_on_mmio_traps_identically_on_both_engines() {
    use taintvp::asm::csr;
    use taintvp::soc::map;

    let mut a = Asm::new(0);
    a.entry();
    a.la(Reg::T0, "handler");
    a.csrw(csr::MTVEC, Reg::T0);
    a.li(Reg::S0, map::UART_BASE as i32);
    a.li(Reg::T1, 1);
    a.amoadd_w(Reg::T2, Reg::T1, Reg::S0); // store fault, no UART write
    a.ebreak(); // skipped: the handler exits
    a.align(4);
    a.label("handler");
    a.csrr(Reg::A0, csr::MCAUSE);
    a.csrr(Reg::A1, csr::MTVAL);
    a.ebreak();
    let prog = a.assemble().expect("mmio amo guest assembles");

    let [pi, pc] = run_both::<Plain>(&prog, 1_000);
    assert_eq!(pi, pc, "plain VP engines disagree on AMO-to-MMIO");
    let [ti, tc] = run_both::<Tainted>(&prog, 1_000);
    assert_eq!(ti, tc, "VP+ engines disagree on AMO-to-MMIO");
    assert_eq!(pi.0, SocExit::Break);
    assert!(pi.1.is_empty(), "the faulting AMO must not reach the UART");

    let cfg = Soc::<Plain>::builder().sensor_thread(false).build();
    let mut soc = Soc::<Plain>::new(cfg);
    soc.load_program(&prog);
    assert_eq!(soc.run(1_000), SocExit::Break);
    assert_eq!(soc.cpu().reg(Reg::A0), csr::cause::STORE_FAULT, "AMO faults as a store");
    assert_eq!(soc.cpu().reg(Reg::A1), map::UART_BASE, "mtval holds the MMIO address");
}

/// SC-after-intervening-store over *tainted* data: the failed SC, the
/// taint carried by the intervening store and the final AMO over a
/// classified cell must leave bit-identical tag state (the state digest
/// folds in per-byte tags) on both engines.
#[test]
fn tainted_atomics_digest_is_engine_invariant() {
    use taintvp::core::Tag;
    use taintvp::rv32::Word as _;

    let cell: u32 = 0x7000;
    let results = [ExecMode::Interp, ExecMode::BlockCache].map(|mode| {
        let mut a = Asm::new(0);
        a.entry();
        a.li(Reg::S0, cell as i32);
        a.lr_w(Reg::T0, Reg::S0); // tainted load: T0 carries the tag
        a.sw(Reg::T0, 32, Reg::S0); // intervening store spreads the taint…
        a.addi(Reg::T0, Reg::T0, 1);
        a.sc_w(Reg::A0, Reg::T0, Reg::S0); // …and this SC must fail
        a.li(Reg::T1, 5);
        a.amoadd_w(Reg::T2, Reg::T1, Reg::S0); // written tag = lub(cell, clean)
        a.ebreak();
        let prog = a.assemble().expect("tainted atomics guest assembles");

        let cfg = Soc::<Tainted>::builder().sensor_thread(false).engine(mode).build();
        let mut soc = Soc::<Tainted>::new(cfg);
        soc.load_program(&prog);
        soc.ram().borrow_mut().classify(cell, 4, Tag::from_bits(0b10));
        let exit = soc.run(1_000);
        let spread_tag = soc.ram().borrow().load(cell + 32, 4).1;
        let cell_tag = soc.ram().borrow().load(cell, 4).1;
        let sc_result = soc.cpu().reg(Reg::A0).val();
        (exit, sc_result, soc.instret(), soc.state_digest(), spread_tag, cell_tag)
    });
    assert_eq!(results[0], results[1], "engines disagree on tainted atomics");
    assert_eq!(results[0].0, SocExit::Break);
    assert_eq!(results[0].1, 1, "the SC after the intervening store must fail");
    assert_eq!(results[0].4, Tag::from_bits(0b10), "the intervening store spreads the tag");
    assert_eq!(results[0].5, Tag::from_bits(0b10), "the AMO write keeps the cell tainted");
}

/// The platform watchdog (armed, waiting on a CAN frame a lossy line
/// drops) bites identically under both engines.
#[test]
fn watchdog_timeout_is_engine_invariant() {
    use taintvp::faults::LossyCanFault;
    use taintvp::kernel::SimTime;
    use taintvp::periph::can::regs as can_regs;
    use taintvp::periph::CanFrame;
    use taintvp::prelude::shared;
    use taintvp::soc::map;

    let results = [ExecMode::Interp, ExecMode::BlockCache].map(|mode| {
        let mut a = Asm::new(0);
        a.entry();
        a.li(Reg::S0, map::CAN_BASE as i32);
        a.label("poll");
        a.lw(Reg::T0, can_regs::RX_AVAIL as i32, Reg::S0);
        a.beqz(Reg::T0, "poll");
        a.ebreak();
        let prog = a.assemble().expect("watchdog guest assembles");

        let cfg = Soc::<Tainted>::builder().sensor_thread(false).engine(mode).build();
        let mut soc = Soc::<Tainted>::new(cfg);
        soc.load_program(&prog);
        let line = shared(LossyCanFault::default());
        line.borrow_mut().arm_drop(1);
        soc.can_host().set_line_fault(line);
        soc.watchdog().borrow_mut().arm(SimTime::from_ms(1));
        let delivered = soc.can_host().send(CanFrame::new(0x10, &[1, 2, 3, 4, 5, 6, 7, 8]));
        assert!(!delivered, "the armed line fault must drop the frame");
        let exit = soc.run(5_000_000);
        (exit, soc.instret(), soc.state_digest())
    });
    assert_eq!(results[0].0, SocExit::WatchdogTimeout, "interpreter watchdog bites");
    assert_eq!(results[1].0, SocExit::WatchdogTimeout, "block-cache watchdog bites");
    assert_eq!(results[0], results[1], "engines disagree on watchdog timeout");
}
