//! # taintvp
//!
//! Umbrella crate for the `taintvp` workspace — a Rust reproduction of
//! *"Dynamic Information Flow Tracking for Embedded Binaries using
//! SystemC-based Virtual Prototypes"* (DAC 2020).
//!
//! Re-exports every subsystem crate under a stable module name. See the
//! workspace `README.md` for architecture and `DESIGN.md` for the system
//! inventory and experiment index.
//!
//! ```
//! use taintvp::core::{Taint, Tag};
//! let a = Taint::new(40u32, Tag::from_bits(0b01));
//! let b = Taint::new(2u32, Tag::from_bits(0b10));
//! let c = a + b;
//! assert_eq!(c.value(), 42);
//! assert_eq!(c.tag(), Tag::from_bits(0b11)); // LUB of both operand tags
//! ```

pub mod prelude;

pub use vpdift_asm as asm;
pub use vpdift_attacks as attacks;
pub use vpdift_core as core;
pub use vpdift_faults as faults;
pub use vpdift_firmware as firmware;
pub use vpdift_fleet as fleet;
pub use vpdift_immo as immo;
pub use vpdift_kernel as kernel;
pub use vpdift_loader as loader;
pub use vpdift_obs as obs;
pub use vpdift_periph as periph;
pub use vpdift_rv32 as rv32;
pub use vpdift_serve as serve;
pub use vpdift_soc as soc;
pub use vpdift_sync as sync;
pub use vpdift_tlm as tlm;
