//! `taintvp-run` — run an assembly program on the virtual prototype from
//! the command line.
//!
//! ```text
//! taintvp-run <program.s> [options]
//!
//!   --policy <file>       textual security policy (see vpdift_core::textpolicy)
//!   --plain               run on the original VP (no taint tracking)
//!   --record              log violations instead of stopping at the first
//!   --input <string>      bytes fed to the terminal (supports \n, \xNN)
//!   --max-insns <n>       instruction budget (default 100M)
//!   --trace <n>           print the first n executed instructions
//!   --dump-uart-hex       print UART output as hex instead of text
//!   --metrics             print the DIFT metrics summary after the run
//!   --flight-recorder <n> keep the last n events; on violation print a
//!                         flight report (disassembled tail + provenance)
//!   --events-out <file>   write every event as JSON lines
//!   --chrome-trace <file> write a Chrome-trace (about://tracing) file
//! ```
//!
//! The observability flags attach a [`taintvp::obs::Recorder`] to every
//! layer of the VP; without them the [`NullSink`] build runs and the
//! instrumentation compiles to nothing.
//!
//! Exit status: 0 = guest reached `ebreak` cleanly, 2 = DIFT violation,
//! 3 = other abnormal exit, 1 = usage/tooling error.

use std::cell::RefCell;
use std::process::ExitCode;
use std::rc::Rc;

use taintvp::asm::{parse_asm, Program};
use taintvp::core::{parse_policy, AtomTable, EnforceMode, SecurityPolicy};
use taintvp::obs::export::{write_chrome_trace, write_jsonl};
use taintvp::obs::{NullSink, ObsSink, Recorder};
use taintvp::rv32::{Plain, TaintMode, Tainted};
use taintvp::soc::{Soc, SocConfig, SocExit};

/// Ring capacity when observability is on but `--flight-recorder` is not.
const DEFAULT_RING: usize = 32;

struct Options {
    program: String,
    policy: Option<String>,
    plain: bool,
    record: bool,
    input: Vec<u8>,
    max_insns: u64,
    trace: u64,
    uart_hex: bool,
    metrics: bool,
    flight_recorder: Option<usize>,
    events_out: Option<String>,
    chrome_trace: Option<String>,
}

impl Options {
    /// Any flag that needs the recording sink?
    fn observed(&self) -> bool {
        self.metrics
            || self.flight_recorder.is_some()
            || self.events_out.is_some()
            || self.chrome_trace.is_some()
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: taintvp-run <program.s> [--policy file] [--plain] [--record] \
         [--input str] [--max-insns n] [--trace n] [--dump-uart-hex] \
         [--metrics] [--flight-recorder n] [--events-out file] [--chrome-trace file]"
    );
    ExitCode::from(1)
}

fn unescape(s: &str) -> Result<Vec<u8>, String> {
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'\\' && i + 1 < bytes.len() {
            match bytes[i + 1] {
                b'n' => {
                    out.push(b'\n');
                    i += 2;
                }
                b't' => {
                    out.push(b'\t');
                    i += 2;
                }
                b'0' => {
                    out.push(0);
                    i += 2;
                }
                b'\\' => {
                    out.push(b'\\');
                    i += 2;
                }
                b'x' => {
                    let hex =
                        s.get(i + 2..i + 4).ok_or_else(|| "truncated \\x escape".to_owned())?;
                    let v = u8::from_str_radix(hex, 16)
                        .map_err(|_| format!("bad \\x escape `{hex}`"))?;
                    out.push(v);
                    i += 4;
                }
                other => return Err(format!("unknown escape `\\{}`", other as char)),
            }
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    Ok(out)
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        program: String::new(),
        policy: None,
        plain: false,
        record: false,
        input: Vec::new(),
        max_insns: 100_000_000,
        trace: 0,
        uart_hex: false,
        metrics: false,
        flight_recorder: None,
        events_out: None,
        chrome_trace: None,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--policy" => opts.policy = Some(args.next().ok_or("--policy needs a file")?),
            "--plain" => opts.plain = true,
            "--record" => opts.record = true,
            "--input" => {
                let s = args.next().ok_or("--input needs a string")?;
                opts.input = unescape(&s)?;
            }
            "--max-insns" => {
                opts.max_insns = args
                    .next()
                    .ok_or("--max-insns needs a number")?
                    .parse()
                    .map_err(|_| "bad --max-insns value".to_owned())?;
            }
            "--trace" => {
                opts.trace = args
                    .next()
                    .ok_or("--trace needs a count")?
                    .parse()
                    .map_err(|_| "bad --trace value".to_owned())?;
            }
            "--dump-uart-hex" => opts.uart_hex = true,
            "--metrics" => opts.metrics = true,
            "--flight-recorder" => {
                let n: usize = args
                    .next()
                    .ok_or("--flight-recorder needs a capacity")?
                    .parse()
                    .map_err(|_| "bad --flight-recorder value".to_owned())?;
                if n == 0 {
                    return Err("--flight-recorder capacity must be > 0".into());
                }
                opts.flight_recorder = Some(n);
            }
            "--events-out" => {
                opts.events_out = Some(args.next().ok_or("--events-out needs a file")?);
            }
            "--chrome-trace" => {
                opts.chrome_trace = Some(args.next().ok_or("--chrome-trace needs a file")?);
            }
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            other if opts.program.is_empty() => opts.program = other.to_owned(),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if opts.program.is_empty() {
        return Err("missing program file".into());
    }
    Ok(opts)
}

fn describe_exit(exit: &SocExit, atoms: &AtomTable) -> (&'static str, u8) {
    match exit {
        SocExit::Break => ("clean exit (ebreak)", 0),
        SocExit::Violation(v) => {
            eprintln!(
                "DIFT violation: {} — data tag [{}], required clearance [{}]{}",
                v.kind,
                atoms.describe(v.tag),
                atoms.describe(v.required),
                v.pc.map(|pc| format!(", pc={pc:#010x}")).unwrap_or_default()
            );
            ("stopped by the DIFT engine", 2)
        }
        SocExit::InstrLimit => ("instruction budget exhausted", 3),
        SocExit::Idle => ("deadlocked in wfi", 3),
    }
}

fn run_vp<M: TaintMode, S: ObsSink>(
    opts: &Options,
    policy: SecurityPolicy,
    program: &Program,
    obs: Rc<RefCell<S>>,
) -> (SocExit, Soc<M, S>) {
    let mut cfg = SocConfig::with_policy(policy);
    if opts.record {
        cfg.enforce = EnforceMode::Record;
    }
    let mut soc: Soc<M, S> = Soc::with_obs(cfg, obs);
    soc.load_program(program);
    soc.terminal().borrow_mut().feed(&opts.input);

    // Optional instruction trace (single-stepped prefix).
    let mut remaining = opts.max_insns;
    for _ in 0..opts.trace.min(remaining) {
        let pc = soc.cpu().pc();
        let (text, _) = soc.disassemble_at(pc);
        let exit = soc.run(1);
        eprintln!("[{:>8}] {pc:#010x}: {text}", soc.instret());
        remaining = remaining.saturating_sub(1);
        if !matches!(exit, SocExit::InstrLimit) {
            return (exit, soc);
        }
    }
    let exit = soc.run(remaining);
    (exit, soc)
}

fn report<M: TaintMode, S: ObsSink>(
    exit: &SocExit,
    soc: &Soc<M, S>,
    opts: &Options,
    atoms: &AtomTable,
) -> u8 {
    let uart = soc.uart().borrow().output().to_vec();
    if opts.uart_hex {
        let hex: Vec<String> = uart.iter().map(|b| format!("{b:02x}")).collect();
        println!("uart[{}]: {}", uart.len(), hex.join(" "));
    } else {
        print!("{}", String::from_utf8_lossy(&uart));
    }
    let engine = soc.engine().borrow();
    for v in engine.violations() {
        eprintln!("recorded violation: {v}");
    }
    let (what, code) = describe_exit(exit, atoms);
    eprintln!(
        "== {what}: {} instructions, {} simulated, {} violations recorded",
        soc.instret(),
        soc.now(),
        engine.violations().len()
    );
    code
}

/// Flight report, metrics and export files from a recorded run. Returns an
/// error string if an output file cannot be written.
fn obs_epilogue(rec: &Recorder, opts: &Options, atoms: &AtomTable) -> Result<(), String> {
    if opts.flight_recorder.is_some() {
        if let Some(report) = rec.flight_report(atoms) {
            eprintln!("{report}");
        }
    }
    if opts.metrics {
        eprintln!("{}", rec.metrics());
    }
    if let Some(path) = &opts.events_out {
        let f = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        write_jsonl(std::io::BufWriter::new(f), rec.events())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(path) = &opts.chrome_trace {
        let f = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        write_chrome_trace(std::io::BufWriter::new(f), rec.events())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(())
}

fn run<M: TaintMode>(
    opts: &Options,
    policy: SecurityPolicy,
    atoms: &AtomTable,
    program: &Program,
) -> ExitCode {
    if !opts.observed() {
        let obs = Rc::new(RefCell::new(NullSink));
        let (exit, soc) = run_vp::<M, NullSink>(opts, policy, program, obs);
        return ExitCode::from(report(&exit, &soc, opts, atoms));
    }
    let mut rec = Recorder::new(opts.flight_recorder.unwrap_or(DEFAULT_RING));
    if opts.events_out.is_some() || opts.chrome_trace.is_some() {
        rec = rec.with_event_log();
    }
    let obs = Rc::new(RefCell::new(rec));
    let (exit, soc) = run_vp::<M, Recorder>(opts, policy, program, obs.clone());
    let code = report(&exit, &soc, opts, atoms);
    if let Err(e) = obs_epilogue(&obs.borrow(), opts, atoms) {
        eprintln!("error: {e}");
        return ExitCode::from(1);
    }
    ExitCode::from(code)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let source = match std::fs::read_to_string(&opts.program) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.program);
            return ExitCode::from(1);
        }
    };
    let program = match parse_asm(&source, 0) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {}: {e}", opts.program);
            return ExitCode::from(1);
        }
    };
    let (policy, atoms) = match &opts.policy {
        None => (SecurityPolicy::permissive(), AtomTable::default()),
        Some(path) => match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::from(1);
            }
            Ok(text) => match parse_policy(&text) {
                Ok(pair) => pair,
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::from(1);
                }
            },
        },
    };
    if opts.plain {
        run::<Plain>(&opts, policy, &atoms, &program)
    } else {
        run::<Tainted>(&opts, policy, &atoms, &program)
    }
}
