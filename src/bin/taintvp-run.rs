//! `taintvp-run` — run a guest program on the virtual prototype from the
//! command line. The program file is either assembly source or an ELF32
//! RISC-V executable — the two are distinguished by the `\x7fELF` magic
//! bytes, so external binaries run with the exact same flag surface
//! (`--profile`/`--explain` resolve symbols from the ELF `.symtab`).
//!
//! ```text
//! taintvp-run <program.s|program.elf> [options]
//! taintvp-run serve [--tcp addr] [--metrics-addr host:port] [--idle-timeout secs]
//! taintvp-run client [--script file] [--tcp addr]
//! taintvp-run fleet [--jobs n] [--workers n] [--seed n] [--rate r]
//!                   [--deadline-ms n] [--journal file] [--resume]
//!                   [--out file] [--inject-panic idx] [--inject-hang idx]
//!                   [--progress] [--telemetry-interval-ms n]
//!                   [--telemetry-out file] [--metrics-json file]
//!                   [--metrics-addr host:port] [--metrics-linger-ms n]
//!
//!   --policy <file>       textual security policy (see vpdift_core::textpolicy)
//!   --plain               run on the original VP (no taint tracking)
//!   --engine <name>       execution engine: `interp` (default) or `block`
//!                         (predecoded basic-block cache with taint-idle
//!                         fast path)
//!   --record              log violations instead of stopping at the first
//!   --input <string>      bytes fed to the terminal (supports \n, \xNN)
//!   --max-insns <n>       instruction budget (default 100M)
//!   --trace <n>           print the first n executed instructions
//!   --dump-uart-hex       print UART output as hex instead of text
//!   --metrics             print the DIFT metrics summary after the run
//!                         (includes guest-profiler totals: top symbols,
//!                         TLM access counts)
//!   --metrics-json <file> write the metrics registry as a
//!                         `taintvp-metrics/v1` JSON document (includes
//!                         block-cache statistics when `--engine block`)
//!   --flight-recorder <n> keep the last n events; on violation print a
//!                         flight report (disassembled tail + provenance)
//!   --events-out <file>   write every event as JSON lines
//!   --chrome-trace <file> write a Chrome-trace (about://tracing) file
//!   --profile             print the guest profile (symbol-attributed
//!                         instruction counts + TLM latency histograms)
//!   --folded-out <file>   write folded call stacks (flamegraph input)
//!   --explain             on a DIFT violation, print the shortest
//!                         recorded source→sink taint path with symbol
//!                         names and disassembly
//!   --flow-dot <file>     write the taint flow graph as Graphviz DOT
//!   --flow-json <file>    write the taint flow graph as JSON
//!   --fault-seed <n>      inject a deterministic fault schedule derived
//!                         from this seed (accepts 0x-prefixed hex)
//!   --fault-rate <r>      faults per CPU step for the schedule
//!                         (default 5e-5, used with --fault-seed)
//!   --campaign <n>        run a fault-free reference plus n faulted runs
//!                         with seeds derived from --fault-seed, classify
//!                         each against the reference and print a summary
//!   --taint-segment <i:b> (ELF guests only, repeatable) stamp taint atom
//!                         bit b onto every byte of PT_LOAD segment i at
//!                         load time — ingress classification for binaries
//!                         that have no policy region of their own
//! ```
//!
//! The `fleet` subcommand sweeps the immobilizer session under per-job
//! fault schedules on the `vpdift-fleet` work-stealing executor: panicking
//! sessions are isolated as `crashed`, deadline overruns are killed and
//! classified `hang`, results stream into a crash-safe `taintvp-fleet/v1`
//! journal, and the aggregate JSON is byte-identical for any worker count
//! (docs/FLEET.md). Its telemetry flags (`--progress`,
//! `--telemetry-out`, `--metrics-addr`, `--metrics-json`; see
//! docs/OBSERVABILITY.md) attach per-worker counters, a
//! `taintvp-telem/v1` stream, live progress, and a scrapeable Prometheus
//! `/metrics` endpoint — all opt-in, costing one pointer check per job
//! when off.
//!
//! The `serve` subcommand starts the live introspection server speaking
//! the `taintvp-serve/v2` line-JSON protocol (docs/SERVE.md; v1 clients
//! negotiate down via `hello`) over stdio, or over TCP with `--tcp addr`
//! — one thread per client against a shared session registry, so a
//! second client can `stop` a run the first started, or arm breakpoints
//! on it mid-flight. `--idle-timeout secs` sweeps sessions no client has
//! touched; `--metrics-addr` adds a `/metrics` endpoint with request and
//! per-session counters. The `client` subcommand drives a server: it
//! sends the request lines from `--script file` (or interactively from
//! stdin) and prints every server line — spawning a `serve` child over
//! stdio by default, or connecting to `--tcp addr`.
//!
//! The observability flags attach a [`taintvp::obs::Recorder`] to every
//! layer of the VP; without them the [`NullSink`] build runs and the
//! instrumentation compiles to nothing.
//!
//! Exit status — one code per [`SocExit`] variant so scripts (and the
//! fault-campaign tooling) can classify runs without parsing stderr:
//!
//! | code | meaning                                      |
//! |------|----------------------------------------------|
//! | 0    | guest reached `ebreak` cleanly               |
//! | 1    | usage/tooling error                          |
//! | 2    | stopped by the DIFT engine (violation)       |
//! | 3    | instruction budget exhausted                 |
//! | 4    | deadlocked in `wfi` (idle, no wake event)    |
//! | 5    | watchdog timeout                             |
//! | 6    | trap loop (guest wedged in its trap handler) |
//! | 7    | stopped by a watchpoint                      |
//! | 8    | malformed guest binary (loader error)        |

use std::process::ExitCode;
use vpdift_sync::{shared, Shared};

use taintvp::asm::{parse_asm, Program};
use taintvp::core::{AtomTable, Tag};
use taintvp::faults::{
    classify, generate_plan, run_with_faults, Outcome, PlannedFault, ScenarioRun,
};
use taintvp::loader::{is_elf, Elf32};
use taintvp::obs::export::{write_chrome_trace, write_jsonl, write_metrics_json};
use taintvp::obs::{NullSink, ObsSink, Recorder, SymbolMap};
use taintvp::rv32::{Plain, TaintMode, Tainted};
use taintvp::soc::{ExecConfig, Soc, SocBuilder, SocExit};

/// Ring capacity when observability is on but `--flight-recorder` is not.
const DEFAULT_RING: usize = 32;

/// RAM window (bytes from offset 0) that random fault schedules target —
/// the loaded program plus its working data, matching the campaign runner.
const RAM_FAULT_WINDOW: u32 = 0x4000;

/// Exit code for a malformed guest binary (see the doc-comment table).
const EXIT_LOADER: u8 = 8;

/// The guest under execution: assembly source assembled in-process, or an
/// external ELF32 binary. The flattened [`Program`] always exists (it
/// drives tracing, disassembly and the profiler symbol map); the ELF form
/// is kept alongside so the SoC can map segments individually with
/// per-segment ingress taint classification.
enum Guest {
    Asm(Program),
    Elf { elf: Elf32, program: Program },
}

impl Guest {
    fn program(&self) -> &Program {
        match self {
            Guest::Asm(p) => p,
            Guest::Elf { program, .. } => program,
        }
    }
}

#[derive(Clone)]
struct Options {
    program: String,
    taint_segments: Vec<(usize, u8)>,
    /// Path of the `--policy` file; its text lands in `exec.policy`.
    policy: Option<String>,
    /// Mode/engine/enforce/policy in the one validated shape every
    /// front end (CLI, serve, fleet) shares.
    exec: ExecConfig,
    input: Vec<u8>,
    max_insns: u64,
    trace: u64,
    uart_hex: bool,
    metrics: bool,
    metrics_json: Option<String>,
    flight_recorder: Option<usize>,
    events_out: Option<String>,
    chrome_trace: Option<String>,
    profile: bool,
    folded_out: Option<String>,
    explain: bool,
    flow_dot: Option<String>,
    flow_json: Option<String>,
    fault_seed: Option<u64>,
    fault_rate: f64,
    campaign: u32,
}

impl Options {
    /// Any flag that needs the recording sink?
    fn observed(&self) -> bool {
        self.metrics
            || self.metrics_json.is_some()
            || self.flight_recorder.is_some()
            || self.events_out.is_some()
            || self.chrome_trace.is_some()
            || self.profiled()
            || self.flow_tracked()
    }

    /// Any flag that needs the guest profiler?
    fn profiled(&self) -> bool {
        self.metrics || self.profile || self.folded_out.is_some()
    }

    /// Any flag that needs per-atom flow tracking?
    fn flow_tracked(&self) -> bool {
        self.explain || self.flow_dot.is_some() || self.flow_json.is_some()
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: taintvp-run <program.s|program.elf> [--policy file] [--plain] [--engine interp|block] [--record] \
         [--input str] [--max-insns n] [--trace n] [--dump-uart-hex] \
         [--metrics] [--metrics-json file] [--flight-recorder n] [--events-out file] \
         [--chrome-trace file] \
         [--profile] [--folded-out file] [--explain] [--flow-dot file] [--flow-json file] \
         [--fault-seed n] [--fault-rate r] [--campaign n] [--taint-segment i:b]\n\
         \x20      taintvp-run serve [--tcp addr]\n\
         \x20      taintvp-run client [--script file] [--tcp addr]\n\
         \x20      taintvp-run fleet [--jobs n] [--workers n] [...] (see docs/FLEET.md)"
    );
    ExitCode::from(1)
}

fn unescape(s: &str) -> Result<Vec<u8>, String> {
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'\\' && i + 1 < bytes.len() {
            match bytes[i + 1] {
                b'n' => {
                    out.push(b'\n');
                    i += 2;
                }
                b't' => {
                    out.push(b'\t');
                    i += 2;
                }
                b'0' => {
                    out.push(0);
                    i += 2;
                }
                b'\\' => {
                    out.push(b'\\');
                    i += 2;
                }
                b'x' => {
                    let hex =
                        s.get(i + 2..i + 4).ok_or_else(|| "truncated \\x escape".to_owned())?;
                    let v = u8::from_str_radix(hex, 16)
                        .map_err(|_| format!("bad \\x escape `{hex}`"))?;
                    out.push(v);
                    i += 4;
                }
                other => return Err(format!("unknown escape `\\{}`", other as char)),
            }
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    Ok(out)
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        program: String::new(),
        taint_segments: Vec::new(),
        policy: None,
        exec: ExecConfig::default(),
        input: Vec::new(),
        max_insns: 100_000_000,
        trace: 0,
        uart_hex: false,
        metrics: false,
        metrics_json: None,
        flight_recorder: None,
        events_out: None,
        chrome_trace: None,
        profile: false,
        folded_out: None,
        explain: false,
        flow_dot: None,
        flow_json: None,
        fault_seed: None,
        fault_rate: 5e-5,
        campaign: 0,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--policy" => opts.policy = Some(args.next().ok_or("--policy needs a file")?),
            "--plain" => opts.exec.set_mode_str("plain").map_err(|e| e.to_string())?,
            "--engine" => {
                let s = args.next().ok_or("--engine needs a name")?;
                opts.exec.set_engine_str(&s).map_err(|e| e.to_string())?;
            }
            "--record" => opts.exec.set_enforce_str("record").map_err(|e| e.to_string())?,
            "--input" => {
                let s = args.next().ok_or("--input needs a string")?;
                opts.input = unescape(&s)?;
            }
            "--max-insns" => {
                opts.max_insns = args
                    .next()
                    .ok_or("--max-insns needs a number")?
                    .parse()
                    .map_err(|_| "bad --max-insns value".to_owned())?;
            }
            "--trace" => {
                opts.trace = args
                    .next()
                    .ok_or("--trace needs a count")?
                    .parse()
                    .map_err(|_| "bad --trace value".to_owned())?;
            }
            "--dump-uart-hex" => opts.uart_hex = true,
            "--metrics" => opts.metrics = true,
            "--metrics-json" => {
                opts.metrics_json = Some(args.next().ok_or("--metrics-json needs a file")?);
            }
            "--flight-recorder" => {
                let n: usize = args
                    .next()
                    .ok_or("--flight-recorder needs a capacity")?
                    .parse()
                    .map_err(|_| "bad --flight-recorder value".to_owned())?;
                if n == 0 {
                    return Err("--flight-recorder capacity must be > 0".into());
                }
                opts.flight_recorder = Some(n);
            }
            "--events-out" => {
                opts.events_out = Some(args.next().ok_or("--events-out needs a file")?);
            }
            "--chrome-trace" => {
                opts.chrome_trace = Some(args.next().ok_or("--chrome-trace needs a file")?);
            }
            "--profile" => opts.profile = true,
            "--folded-out" => {
                opts.folded_out = Some(args.next().ok_or("--folded-out needs a file")?);
            }
            "--explain" => opts.explain = true,
            "--flow-dot" => {
                opts.flow_dot = Some(args.next().ok_or("--flow-dot needs a file")?);
            }
            "--flow-json" => {
                opts.flow_json = Some(args.next().ok_or("--flow-json needs a file")?);
            }
            "--fault-seed" => {
                let s = args.next().ok_or("--fault-seed needs a number")?;
                let v = match s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16).ok(),
                    None => s.parse().ok(),
                };
                opts.fault_seed = Some(v.ok_or_else(|| format!("bad --fault-seed `{s}`"))?);
            }
            "--fault-rate" => {
                let s = args.next().ok_or("--fault-rate needs a number")?;
                opts.fault_rate = s.parse().map_err(|_| format!("bad --fault-rate `{s}`"))?;
                if !(opts.fault_rate > 0.0 && opts.fault_rate.is_finite()) {
                    return Err("--fault-rate must be a positive finite number".into());
                }
            }
            "--campaign" => {
                opts.campaign = args
                    .next()
                    .ok_or("--campaign needs a count")?
                    .parse()
                    .map_err(|_| "bad --campaign value".to_owned())?;
            }
            "--taint-segment" => {
                let s = args.next().ok_or("--taint-segment needs `index:bit`")?;
                let (idx, bit) =
                    s.split_once(':').ok_or_else(|| format!("bad --taint-segment `{s}`"))?;
                let idx: usize =
                    idx.parse().map_err(|_| format!("bad --taint-segment index `{idx}`"))?;
                let bit: u8 =
                    bit.parse().map_err(|_| format!("bad --taint-segment bit `{bit}`"))?;
                if bit as u32 >= Tag::CAPACITY {
                    return Err(format!("--taint-segment bit must be < {}", Tag::CAPACITY));
                }
                opts.taint_segments.push((idx, bit));
            }
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            other if opts.program.is_empty() => opts.program = other.to_owned(),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if opts.program.is_empty() {
        return Err("missing program file".into());
    }
    if opts.campaign > 0 && opts.observed() {
        return Err("--campaign cannot be combined with observability flags".into());
    }
    if opts.campaign > 0 && opts.fault_seed.is_none() {
        return Err("--campaign needs --fault-seed".into());
    }
    Ok(opts)
}

fn describe_exit(exit: &SocExit, atoms: &AtomTable) -> (&'static str, u8) {
    match exit {
        SocExit::Break => ("clean exit (ebreak)", 0),
        SocExit::Violation(v) => {
            eprintln!(
                "DIFT violation: {} — data tag [{}], required clearance [{}]{}",
                v.kind,
                atoms.describe(v.tag),
                atoms.describe(v.required),
                v.pc.map(|pc| format!(", pc={pc:#010x}")).unwrap_or_default()
            );
            ("stopped by the DIFT engine", 2)
        }
        SocExit::InstrLimit => ("instruction budget exhausted", 3),
        SocExit::Idle => ("deadlocked in wfi", 4),
        SocExit::WatchdogTimeout => ("watchdog timeout", 5),
        SocExit::TrapLoop => ("trap loop", 6),
        SocExit::Stopped => ("stopped by watchpoint", 7),
    }
}

/// A finished VP run: how it exited, the SoC for post-mortem inspection,
/// and every fault the plan actually landed.
type VpRun<M, S> = (SocExit, Soc<M, S>, Vec<taintvp::faults::FaultRecord>);

fn run_vp<M: TaintMode, S: ObsSink>(
    opts: &Options,
    guest: &Guest,
    obs: Shared<S>,
    plan: &[PlannedFault],
) -> Result<VpRun<M, S>, String> {
    let builder = SocBuilder::from_exec_config(&opts.exec).map_err(|e| e.to_string())?;
    let mut soc: Soc<M, S> = Soc::with_obs(builder.build(), obs);
    match guest {
        Guest::Asm(program) => soc.load_program(program),
        Guest::Elf { elf, .. } => {
            let segs = &opts.taint_segments;
            soc.load_elf_with(elf, |i, _seg| {
                segs.iter()
                    .filter(|(idx, _)| *idx == i)
                    .fold(Tag::EMPTY, |t, (_, bit)| t.lub(Tag::from_bits(1 << bit)))
            })
            .map_err(|e| format!("cannot load ELF: {e}"))?;
        }
    }
    soc.terminal().borrow_mut().feed(&opts.input);

    // Optional instruction trace (single-stepped prefix).
    let mut remaining = opts.max_insns;
    for _ in 0..opts.trace.min(remaining) {
        let pc = soc.cpu().pc();
        let (text, _) = soc.disassemble_at(pc);
        let exit = soc.run(1);
        eprintln!("[{:>8}] {pc:#010x}: {text}", soc.instret());
        remaining = remaining.saturating_sub(1);
        if !matches!(exit, SocExit::InstrLimit) {
            return Ok((exit, soc, Vec::new()));
        }
    }
    if plan.is_empty() {
        let exit = soc.run(remaining);
        Ok((exit, soc, Vec::new()))
    } else {
        // The plan's steps are absolute; the traced prefix already
        // consumed some, so faults scheduled inside it land immediately.
        let (exit, records) = run_with_faults(&mut soc, remaining, plan);
        Ok((exit, soc, records))
    }
}

fn report<M: TaintMode, S: ObsSink>(
    exit: &SocExit,
    soc: &Soc<M, S>,
    opts: &Options,
    atoms: &AtomTable,
) -> u8 {
    let uart = soc.uart().borrow().output().to_vec();
    if opts.uart_hex {
        let hex: Vec<String> = uart.iter().map(|b| format!("{b:02x}")).collect();
        println!("uart[{}]: {}", uart.len(), hex.join(" "));
    } else {
        print!("{}", String::from_utf8_lossy(&uart));
    }
    let engine = soc.engine().borrow();
    for v in engine.violations() {
        eprintln!("recorded violation: {v}");
    }
    let (what, code) = describe_exit(exit, atoms);
    eprintln!(
        "== {what}: {} instructions, {} simulated, {} violations recorded",
        soc.instret(),
        soc.now(),
        engine.violations().len()
    );
    if let Some(stats) = soc.engine_stats() {
        eprintln!(
            "== block cache: {} hits, {} misses, {} invalidations, {} flushes, {} idle / {} checked steps",
            stats.hits,
            stats.misses,
            stats.invalidations,
            stats.flushes,
            stats.idle_steps,
            stats.checked_steps
        );
    }
    code
}

/// Flight report, metrics and export files from a recorded run. Returns an
/// error string if an output file cannot be written.
fn obs_epilogue(
    rec: &Recorder,
    exit: &SocExit,
    opts: &Options,
    atoms: &AtomTable,
) -> Result<(), String> {
    if opts.flight_recorder.is_some() {
        if let Some(report) = rec.flight_report(atoms) {
            eprintln!("{report}");
        }
    }
    if opts.metrics {
        eprintln!("{}", rec.metrics());
        eprintln!("exit kind:              {}", exit.label());
    }
    if let Some(path) = &opts.metrics_json {
        let f = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        write_metrics_json(std::io::BufWriter::new(f), rec.metrics())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if opts.explain {
        match rec.explain(atoms) {
            Some(text) => eprintln!("{text}"),
            None => {
                if matches!(exit, SocExit::Violation(_)) {
                    eprintln!("--explain: no flow recorded for the violating atoms");
                }
            }
        }
    }
    if let Some(prof) = rec.profiler() {
        if opts.profile || opts.metrics {
            eprint!("{}", prof.render_flat(10));
            eprint!("{}", prof.render_tlm());
        }
        if let Some(path) = &opts.folded_out {
            std::fs::write(path, prof.folded_output())
                .map_err(|e| format!("cannot write {path}: {e}"))?;
        }
    }
    if let Some(path) = &opts.flow_dot {
        let f = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        rec.write_flow_dot(&mut std::io::BufWriter::new(f), atoms)
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(path) = &opts.flow_json {
        let f = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        rec.write_flow_json(&mut std::io::BufWriter::new(f), atoms)
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(path) = &opts.events_out {
        let f = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        write_jsonl(std::io::BufWriter::new(f), rec.events())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(path) = &opts.chrome_trace {
        let f = std::fs::File::create(path).map_err(|e| format!("cannot create {path}: {e}"))?;
        write_chrome_trace(std::io::BufWriter::new(f), rec.events())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    Ok(())
}

/// Deterministic fault schedule for a single `--fault-seed` run: the plan
/// is sized by `--fault-rate` over the instruction budget (capped at 32
/// faults, matching the campaign runner).
fn fault_plan(opts: &Options) -> Vec<PlannedFault> {
    match opts.fault_seed {
        None => Vec::new(),
        Some(seed) => {
            let count = (opts.max_insns as f64 * opts.fault_rate).ceil() as u32;
            generate_plan(seed, count.clamp(1, 32), opts.max_insns, RAM_FAULT_WINDOW)
        }
    }
}

/// Snapshot of a finished run in the campaign classifier's terms.
fn snapshot<M: TaintMode, S: ObsSink>(
    exit: SocExit,
    soc: &Soc<M, S>,
    faults: Vec<taintvp::faults::FaultRecord>,
) -> ScenarioRun {
    ScenarioRun {
        exit,
        uart: soc.uart().borrow().output().to_vec(),
        auths: 0,
        steps: soc.instret() + soc.cpu().traps_taken(),
        traps: soc.cpu().traps_taken(),
        sim_time: soc.now(),
        faults,
    }
}

/// `--campaign n`: one fault-free reference plus `n` faulted replays with
/// derived seeds, each classified against the reference. Exits 2 when any
/// replay ended in silent data corruption.
fn run_cli_campaign<M: TaintMode>(opts: &Options, guest: &Guest) -> ExitCode {
    let master = opts.fault_seed.expect("validated in parse_args");
    let obs = shared(NullSink);
    let (exit, soc, _) = match run_vp::<M, NullSink>(opts, guest, obs, &[]) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(EXIT_LOADER);
        }
    };
    let reference = snapshot(exit, &soc, Vec::new());
    eprintln!(
        "reference: exit {} after {} steps, {} UART bytes",
        reference.exit.label(),
        reference.steps,
        reference.uart.len()
    );

    let horizon = reference.steps.max(1);
    let budget = reference.steps.saturating_mul(4).saturating_add(10_000);
    let count = ((horizon as f64 * opts.fault_rate).ceil() as u32).clamp(1, 32);
    let mut totals = [0u64; Outcome::COUNT];
    for i in 0..opts.campaign {
        let seed = master.wrapping_add(u64::from(i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let plan = generate_plan(seed, count, horizon, RAM_FAULT_WINDOW);
        let obs = shared(NullSink);
        // Same options, new budget, no recursion into `--campaign` — the
        // observability flags are already rejected by parse_args here.
        let mut run_opts = opts.clone();
        run_opts.max_insns = budget;
        run_opts.trace = 0;
        run_opts.campaign = 0;
        let (exit, soc, records) = match run_vp::<M, NullSink>(&run_opts, guest, obs, &plan) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(EXIT_LOADER);
            }
        };
        let run = snapshot(exit, &soc, records);
        let outcome = classify(&reference, &run);
        totals[outcome.index()] += 1;
        eprintln!(
            "run {i:>3}: seed=0x{seed:016x} exit={:<16} outcome={:<16} faults={}",
            run.exit.label(),
            outcome.label(),
            run.faults.len()
        );
    }
    eprintln!("campaign summary ({} runs):", opts.campaign);
    for o in Outcome::ALL {
        eprintln!("  {:>16}: {}", o.label(), totals[o.index()]);
    }
    if totals[Outcome::Sdc.index()] > 0 {
        eprintln!("campaign: FAIL — silent data corruption observed");
        return ExitCode::from(2);
    }
    ExitCode::SUCCESS
}

fn run<M: TaintMode>(opts: &Options, atoms: &AtomTable, guest: &Guest) -> ExitCode {
    if opts.campaign > 0 {
        return run_cli_campaign::<M>(opts, guest);
    }
    let plan = fault_plan(opts);
    if !plan.is_empty() {
        eprintln!("fault schedule ({} planned):", plan.len());
        for f in &plan {
            eprintln!("  step {:>10}: {} @ {}", f.at_step, f.kind.label(), f.kind.site());
        }
    }
    if !opts.observed() {
        let obs = shared(NullSink);
        let (exit, soc, records) = match run_vp::<M, NullSink>(opts, guest, obs, &plan) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(EXIT_LOADER);
            }
        };
        report_faults(&records);
        return ExitCode::from(report(&exit, &soc, opts, atoms));
    }
    let mut rec = Recorder::new(opts.flight_recorder.unwrap_or(DEFAULT_RING))
        .with_symbols(SymbolMap::from_program(guest.program()));
    if opts.events_out.is_some() || opts.chrome_trace.is_some() {
        rec = rec.with_event_log();
    }
    if opts.profiled() {
        rec = rec.with_profiler();
    }
    if opts.flow_tracked() {
        rec = rec.with_explain();
    }
    let obs = shared(rec);
    let (exit, soc, records) = match run_vp::<M, Recorder>(opts, guest, obs.clone(), &plan) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(EXIT_LOADER);
        }
    };
    report_faults(&records);
    let code = report(&exit, &soc, opts, atoms);
    if let Err(e) = obs_epilogue(&obs.borrow(), &exit, opts, atoms) {
        eprintln!("error: {e}");
        return ExitCode::from(1);
    }
    ExitCode::from(code)
}

fn report_faults(records: &[taintvp::faults::FaultRecord]) {
    for r in records {
        eprintln!(
            "fault injected at step {}: {} @ {}{}",
            r.step,
            r.kind,
            r.site,
            r.addr.map(|a| format!(" addr={a:#x}")).unwrap_or_default()
        );
    }
}

/// Options for `taintvp-run fleet` — a parallel immobilizer-session
/// fault sweep on the `vpdift-fleet` executor.
struct FleetOptions {
    /// Guest program file (assembly or ELF32) swept instead of the
    /// built-in immobilizer session when present.
    program: Option<String>,
    jobs: u32,
    workers: usize,
    seed: u64,
    rate: f64,
    deadline_ms: u64,
    journal: Option<String>,
    resume: bool,
    out: Option<String>,
    inject_panic: Vec<u64>,
    inject_hang: Vec<u64>,
    telemetry_interval_ms: u64,
    telemetry_out: Option<String>,
    metrics_addr: Option<String>,
    metrics_linger_ms: u64,
    metrics_json: Option<String>,
    progress: bool,
}

impl FleetOptions {
    /// Whether any telemetry consumer is configured (spawns the hub and
    /// sampler; off by default so the hot path stays unobserved).
    fn telemetry_on(&self) -> bool {
        self.telemetry_out.is_some()
            || self.metrics_addr.is_some()
            || self.metrics_json.is_some()
            || self.progress
    }
}

const FLEET_USAGE: &str =
    "usage: taintvp-run fleet [--program file] [--jobs n] [--workers n] [--seed n] [--rate r] \
     [--deadline-ms n] [--journal file] [--resume] [--out file] \
     [--inject-panic idx] [--inject-hang idx] [--progress] \
     [--telemetry-interval-ms n] [--telemetry-out file] [--metrics-json file] \
     [--metrics-addr host:port] [--metrics-linger-ms n]";

fn parse_fleet_args(args: &[String]) -> Result<FleetOptions, String> {
    let mut opts = FleetOptions {
        program: None,
        jobs: 64,
        workers: 1,
        seed: 0xF1EE7,
        rate: 5e-5,
        deadline_ms: 10_000,
        journal: None,
        resume: false,
        out: None,
        inject_panic: Vec::new(),
        inject_hang: Vec::new(),
        telemetry_interval_ms: 500,
        telemetry_out: None,
        metrics_addr: None,
        metrics_linger_ms: 0,
        metrics_json: None,
        progress: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next().map(String::as_str).ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--jobs" => {
                let v = value("--jobs")?;
                opts.jobs = v.parse().map_err(|_| format!("bad --jobs `{v}`"))?;
            }
            "--workers" => {
                let v = value("--workers")?;
                opts.workers = v.parse().map_err(|_| format!("bad --workers `{v}`"))?;
                if opts.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--seed" => {
                let v = value("--seed")?;
                let parsed = match v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
                    Some(hex) => u64::from_str_radix(hex, 16).ok(),
                    None => v.parse().ok(),
                };
                opts.seed = parsed.ok_or_else(|| format!("bad --seed `{v}`"))?;
            }
            "--rate" => {
                let v = value("--rate")?;
                opts.rate = v.parse().map_err(|_| format!("bad --rate `{v}`"))?;
                if !(opts.rate > 0.0 && opts.rate.is_finite()) {
                    return Err("--rate must be a positive finite number".into());
                }
            }
            "--deadline-ms" => {
                let v = value("--deadline-ms")?;
                opts.deadline_ms = v.parse().map_err(|_| format!("bad --deadline-ms `{v}`"))?;
            }
            "--program" => opts.program = Some(value("--program")?.to_owned()),
            "--journal" => opts.journal = Some(value("--journal")?.to_owned()),
            "--resume" => opts.resume = true,
            "--out" => opts.out = Some(value("--out")?.to_owned()),
            "--inject-panic" => {
                let v = value("--inject-panic")?;
                opts.inject_panic.push(v.parse().map_err(|_| format!("bad --inject-panic `{v}`"))?);
            }
            "--inject-hang" => {
                let v = value("--inject-hang")?;
                opts.inject_hang.push(v.parse().map_err(|_| format!("bad --inject-hang `{v}`"))?);
            }
            "--telemetry-interval-ms" => {
                let v = value("--telemetry-interval-ms")?;
                opts.telemetry_interval_ms =
                    v.parse().map_err(|_| format!("bad --telemetry-interval-ms `{v}`"))?;
                if opts.telemetry_interval_ms == 0 {
                    return Err("--telemetry-interval-ms must be at least 1".into());
                }
            }
            "--telemetry-out" => opts.telemetry_out = Some(value("--telemetry-out")?.to_owned()),
            "--metrics-addr" => opts.metrics_addr = Some(value("--metrics-addr")?.to_owned()),
            "--metrics-linger-ms" => {
                let v = value("--metrics-linger-ms")?;
                opts.metrics_linger_ms =
                    v.parse().map_err(|_| format!("bad --metrics-linger-ms `{v}`"))?;
            }
            "--metrics-json" => opts.metrics_json = Some(value("--metrics-json")?.to_owned()),
            "--progress" => opts.progress = true,
            "--help" | "-h" => return Err(FLEET_USAGE.into()),
            other => return Err(format!("unknown fleet option `{other}`\n{FLEET_USAGE}")),
        }
    }
    if opts.resume && opts.journal.is_none() {
        return Err("--resume needs --journal".into());
    }
    if !opts.inject_hang.is_empty() && opts.deadline_ms == 0 {
        return Err("--inject-hang needs a nonzero --deadline-ms".into());
    }
    if opts.metrics_linger_ms > 0 && opts.metrics_addr.is_none() {
        return Err("--metrics-linger-ms needs --metrics-addr".into());
    }
    Ok(opts)
}

/// Reads a guest program file for the fleet: ELF32 by magic bytes,
/// assembly source otherwise. Fleet jobs only need the flat image — the
/// single-run front end is the one that keeps the parsed ELF around for
/// per-segment classification.
fn load_guest_program(path: &str) -> Result<Program, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if is_elf(&bytes) {
        let elf = Elf32::parse(&bytes).map_err(|e| format!("{path}: {e}"))?;
        elf.to_program().map_err(|e| format!("{path}: {e}"))
    } else {
        let source = String::from_utf8(bytes)
            .map_err(|_| format!("{path}: not an ELF image and not UTF-8 assembly"))?;
        parse_asm(&source, 0).map_err(|e| format!("{path}: {e}"))
    }
}

/// Base builder for fleet guests — the same single [`ExecConfig`] entry
/// point the CLI and serve front ends resolve through.
fn fleet_builder() -> SocBuilder {
    SocBuilder::from_exec_config(&ExecConfig::default())
        .expect("the default exec config is valid")
        .sensor_thread(false)
}

/// Fault-free reference run of an external guest (fleet `--program`).
fn program_reference(program: &Program) -> ScenarioRun {
    let cfg = fleet_builder().build();
    let mut soc = Soc::<Tainted>::new(cfg);
    soc.load_program(program);
    let exit = soc.run(100_000_000);
    snapshot(exit, &soc, Vec::new())
}

/// One faulted replay of an external guest under a fleet job's stop flag
/// and live instruction counter.
fn program_faulted(
    program: &Program,
    plan: &[PlannedFault],
    budget: u64,
    ctx: &taintvp::fleet::JobCtx,
) -> ScenarioRun {
    let cfg = fleet_builder().stop_flag(ctx.stop.clone()).insn_cell(ctx.insns.clone()).build();
    let mut soc = Soc::<Tainted>::new(cfg);
    soc.load_program(program);
    let (exit, records) = run_with_faults(&mut soc, budget, plan);
    snapshot(exit, &soc, records)
}

/// `taintvp-run fleet` — N seeded fault runs on the work-stealing
/// executor, sweeping either the built-in immobilizer session or, with
/// `--program`, an external guest (assembly or ELF32). Each job replays
/// the scenario under its own derived fault schedule and renders one
/// deterministic JSON row; the aggregate is byte-identical for any worker
/// count. `--inject-panic` / `--inject-hang` replace the named job with a
/// deliberately faulty one (a panicking session, a wedged guest only the
/// deadline reaper can kill) to exercise the failure taxonomy end to end.
fn fleet_main(args: &[String]) -> ExitCode {
    use std::sync::Arc;
    use std::time::Duration;

    use taintvp::faults::campaign::{faulted_run, reference_run};
    use taintvp::faults::{classify, generate_plan, scenario_json, Outcome, ScenarioKind};
    use taintvp::fleet::{
        quiet_worker_panics, spawn_sampler, Fleet, FleetConfig, Job, JobError, JobOutput,
        JobStatus, Journal, JournalHeader, SamplerConfig, TelemetryHub,
    };
    use taintvp::kernel::SimTime;
    use taintvp::obs::MetricsServer;

    let opts = match parse_fleet_args(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    };
    quiet_worker_panics();

    // Optional external guest: `--program` sweeps an assembly or ELF32
    // binary instead of the built-in immobilizer session.
    let guest = match &opts.program {
        Some(path) => match load_guest_program(path) {
            Ok(p) => Some(Arc::new(p)),
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(EXIT_LOADER);
            }
        },
        None => None,
    };
    let kind = ScenarioKind::ImmoSession;
    let scenario_name: &'static str = if guest.is_some() { "program" } else { kind.name() };
    let suite: &'static str = if guest.is_some() { "program-sweep" } else { "immo-sweep" };

    // Driver-side prelude: the fault-free reference every job classifies
    // against (exactly once, like the campaign runner).
    let reference = Arc::new(match &guest {
        Some(p) => program_reference(p),
        None => reference_run(kind),
    });
    eprintln!(
        "fleet: reference {scenario_name}: exit {} after {} steps",
        reference.exit.label(),
        reference.steps
    );

    let jobs: Vec<Job> = (0..u64::from(opts.jobs))
        .map(|i| {
            if opts.inject_panic.contains(&i) {
                return Job::new(i, move |_ctx| -> Result<JobOutput, JobError> {
                    panic!("injected panic in job {i}");
                });
            }
            if opts.inject_hang.contains(&i) {
                return Job::new(i, move |ctx: &taintvp::fleet::JobCtx| {
                    // A guest wedged in a tight loop with an effectively
                    // unlimited budget: only the deadline reaper raising
                    // `ctx.stop` ends this attempt.
                    let program = parse_asm("loop:\n    j loop\n", 0)
                        .map_err(|e| JobError::Fatal(format!("bad hang program: {e}")))?;
                    let cfg = fleet_builder()
                        .stop_flag(ctx.stop.clone())
                        .insn_cell(ctx.insns.clone())
                        .build();
                    let mut soc = Soc::<Tainted>::new(cfg);
                    soc.load_program(&program);
                    soc.run(u64::MAX);
                    Err(JobError::Fatal("hang job outlived its deadline kill".into()))
                });
            }
            let reference = Arc::clone(&reference);
            let guest = guest.clone();
            let master = opts.seed;
            let rate = opts.rate;
            Job::new(i, move |ctx: &taintvp::fleet::JobCtx| {
                let seed = master.wrapping_add((i + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let count = ((reference.steps as f64 * rate).ceil() as u32).clamp(1, 32);
                let plan = generate_plan(seed, count, reference.steps.max(1), RAM_FAULT_WINDOW);
                let budget = reference.steps * 4 + 10_000;
                let watchdog = (reference.sim_time * 4).saturating_add(SimTime::from_ms(1));
                let run = match &guest {
                    Some(p) => program_faulted(p, &plan, budget, ctx),
                    None => faulted_run(kind, &plan, Some(watchdog), budget),
                };
                let outcome = classify(&reference, &run);
                let mut counts = vec![0u64; Outcome::COUNT];
                counts[outcome.index()] = 1;
                let row = taintvp::faults::ScenarioOutcome {
                    scenario: scenario_name,
                    exit: run.exit.label(),
                    outcome,
                    faults: run.faults,
                };
                let payload = format!(
                    "{{\"job\":{i},\"seed\":\"0x{seed:016x}\",\"result\":{}}}",
                    scenario_json(&row)
                );
                Ok(JobOutput { payload, counts, insns: run.steps })
            })
        })
        .collect();

    let header = JournalHeader { suite: suite.into(), jobs: u64::from(opts.jobs), seed: opts.seed };
    let journal_path = opts.journal.as_ref().map(std::path::Path::new);
    let (mut journal, recovered) = match (journal_path, opts.resume) {
        (Some(path), true) => match Journal::open_resume(path, &header) {
            Ok((j, recovered)) => (Some(j), recovered),
            Err(e) => {
                eprintln!("error: cannot resume journal: {e}");
                return ExitCode::from(1);
            }
        },
        (Some(path), false) => match Journal::create(path, &header) {
            Ok(j) => (Some(j), Vec::new()),
            Err(e) => {
                eprintln!("error: cannot create journal: {e}");
                return ExitCode::from(1);
            }
        },
        (None, _) => (None, Vec::new()),
    };
    if !recovered.is_empty() {
        eprintln!("fleet: resumed {} completed job(s) from journal", recovered.len());
    }

    // Telemetry is opt-in: without any consumer flag no hub exists and
    // the executor's per-job telemetry guard is a null-pointer check.
    let hub = opts.telemetry_on().then(|| TelemetryHub::new(opts.workers));
    if let Some(h) = &hub {
        h.add_resumed(recovered.len() as u64);
    }
    let metrics_server = match (&opts.metrics_addr, &hub) {
        (Some(addr), Some(h)) => {
            let render_hub = Arc::clone(h);
            // Fleet series plus the `obs::metrics` registry (under the
            // `vp_` prefix) — the fleet aggregates one registry counter
            // live, retired instructions, same as `--metrics-json`.
            let render = Arc::new(move || {
                let mut expo = taintvp::obs::Expo::new();
                let snap = render_hub.snapshot();
                snap.render_prom(&mut expo);
                let registry =
                    taintvp::obs::Metrics { instructions: snap.insns, ..Default::default() };
                taintvp::obs::expo::render_metrics(&mut expo, "vp", &[], &registry);
                expo.finish()
            });
            match MetricsServer::bind(addr, render) {
                Ok(server) => {
                    eprintln!("fleet: metrics endpoint on http://{}/metrics", server.local_addr());
                    Some(server)
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    return ExitCode::from(1);
                }
            }
        }
        _ => None,
    };
    let sampler = match &hub {
        Some(h) => {
            let config = SamplerConfig {
                interval: Duration::from_millis(opts.telemetry_interval_ms),
                out: opts.telemetry_out.as_ref().map(std::path::PathBuf::from),
                progress: true,
            };
            match spawn_sampler(Arc::clone(h), config) {
                Ok(s) => Some(s),
                Err(e) => {
                    eprintln!("error: cannot start telemetry sampler: {e}");
                    return ExitCode::from(1);
                }
            }
        }
        None => None,
    };

    let skip: Vec<u64> = recovered.iter().map(|r| r.job_id).collect();
    let fleet_config = FleetConfig {
        workers: opts.workers,
        deadline: (opts.deadline_ms > 0).then(|| Duration::from_millis(opts.deadline_ms)),
        telemetry: hub.clone(),
        ..FleetConfig::default()
    };
    let fresh = Fleet::new(fleet_config).run(jobs, journal.as_mut(), &skip);
    if let Some(s) = sampler {
        // The run marked the hub done; the sampler emits its final
        // snapshot and exits. A stream-write failure is diagnostic only.
        if let Err(e) = s.finish() {
            eprintln!("fleet: warning: telemetry stream write failed: {e}");
        }
    }

    let mut results = recovered;
    results.extend(fresh);
    results.sort_by_key(|r| r.job_id);

    // Deterministic aggregate: one row per job in id order, failures as
    // explicit rows — byte-identical for any worker count.
    use std::fmt::Write as _;
    let mut summary = [0u64; Outcome::COUNT];
    let mut failed = [0u64; 3]; // crashed, hang, error
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"fleet\": {{\"suite\": \"{suite}\", \"seed\": {}, \"jobs\": {}}},",
        opts.seed, opts.jobs
    );
    let _ = writeln!(
        out,
        "  \"reference\": {{\"scenario\":\"{scenario_name}\",\"exit\":\"{}\",\"steps\":{}}},",
        reference.exit.label(),
        reference.steps
    );
    out.push_str("  \"runs\": [\n");
    for (n, r) in results.iter().enumerate() {
        let comma = if n + 1 < results.len() { "," } else { "" };
        match (&r.status, &r.payload) {
            (JobStatus::Ok, Some(payload)) => {
                for (slot, c) in r.counts.iter().enumerate() {
                    if let Some(cell) = summary.get_mut(slot) {
                        *cell += c;
                    }
                }
                let _ = writeln!(out, "    {payload}{comma}");
            }
            _ => {
                match r.status {
                    JobStatus::Crashed => failed[0] += 1,
                    JobStatus::Hang => failed[1] += 1,
                    _ => failed[2] += 1,
                }
                let _ = writeln!(
                    out,
                    "    {{\"job\":{},\"failed\":\"{}\"}}{comma}",
                    r.job_id,
                    r.status.label()
                );
            }
        }
    }
    out.push_str("  ],\n");
    let mut cells: Vec<String> =
        Outcome::ALL.iter().map(|o| format!("\"{}\": {}", o.label(), summary[o.index()])).collect();
    for (label, n) in [("crashed", failed[0]), ("hang", failed[1]), ("error", failed[2])] {
        cells.push(format!("\"{label}\": {n}"));
    }
    let _ = writeln!(out, "  \"summary\": {{{}}}", cells.join(", "));
    out.push_str("}\n");

    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &out) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::from(1);
            }
            eprintln!("fleet: report written to {path}");
        }
        None => print!("{out}"),
    }

    // `taintvp-metrics/v1` with the fleet extension: outcome-class
    // counts plus the per-worker telemetry snapshot (timing-free).
    if let (Some(path), Some(h)) = (&opts.metrics_json, &hub) {
        let snap = h.snapshot();
        let mut outcome_cells: Vec<String> = Outcome::ALL
            .iter()
            .map(|o| format!("\"{}\":{}", o.label(), summary[o.index()]))
            .collect();
        // Job-level failure classes are prefixed so they cannot collide
        // with classification labels (`hang` exists in both namespaces).
        for (label, n) in
            [("job_crashed", failed[0]), ("job_hang", failed[1]), ("job_error", failed[2])]
        {
            outcome_cells.push(format!("\"{label}\":{n}"));
        }
        let fleet_block = format!(
            "{{\"outcomes\":{{{}}},\"telemetry\":{}}}",
            outcome_cells.join(","),
            snap.deterministic_json()
        );
        let registry =
            taintvp::obs::Metrics { instructions: snap.insns, ..taintvp::obs::Metrics::default() };
        let write = std::fs::File::create(path).and_then(|f| {
            taintvp::obs::export::write_metrics_json_ext(
                std::io::BufWriter::new(f),
                &registry,
                &[("fleet", &fleet_block)],
            )
        });
        if let Err(e) = write {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::from(1);
        }
        eprintln!("fleet: metrics JSON written to {path}");
    }
    for r in &results {
        if r.status != JobStatus::Ok {
            eprintln!(
                "fleet: job {} did not complete: {}{}",
                r.job_id,
                r.status.label(),
                r.detail.as_deref().map(|d| format!(" ({d})")).unwrap_or_default()
            );
        }
    }
    eprintln!(
        "fleet: {} job(s), {} completed, {} crashed, {} hung, {} errored",
        results.len(),
        results.len() as u64 - failed.iter().sum::<u64>(),
        failed[0],
        failed[1],
        failed[2]
    );
    // The SDC gate is a *regression* gate for the defended immobilizer
    // firmware. A `--program` sweep characterises an arbitrary external
    // binary with no promised detection machinery, so corruption there is
    // a finding (reported in the aggregate), not a failure.
    let exit = if summary[Outcome::Sdc.index()] > 0 && guest.is_none() {
        eprintln!("fleet: FAIL — silent data corruption observed");
        ExitCode::from(2)
    } else {
        if summary[Outcome::Sdc.index()] > 0 {
            eprintln!(
                "fleet: {} run(s) ended in silent data corruption (characterisation sweep)",
                summary[Outcome::Sdc.index()]
            );
        }
        ExitCode::SUCCESS
    };
    if let Some(server) = metrics_server {
        // Keep the endpoint up for post-run scrapes (CI asserts final
        // counters against the journal) before tearing it down.
        if opts.metrics_linger_ms > 0 {
            eprintln!(
                "fleet: metrics endpoint lingering {}ms for final scrapes",
                opts.metrics_linger_ms
            );
            std::thread::sleep(Duration::from_millis(opts.metrics_linger_ms));
        }
        server.shutdown();
    }
    exit
}

/// `taintvp-run serve [--tcp addr] [--idle-timeout secs]` — the live
/// introspection server over stdio (default) or a threaded TCP listener
/// serving concurrent clients against one shared session registry.
fn serve_main(args: &[String]) -> ExitCode {
    let mut tcp = None;
    let mut metrics_addr = None;
    let mut idle_timeout = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tcp" => {
                let Some(addr) = args.get(i + 1) else {
                    eprintln!("error: --tcp needs an address");
                    return ExitCode::from(1);
                };
                tcp = Some(addr.clone());
                i += 2;
            }
            "--metrics-addr" => {
                let Some(addr) = args.get(i + 1) else {
                    eprintln!("error: --metrics-addr needs an address");
                    return ExitCode::from(1);
                };
                metrics_addr = Some(addr.clone());
                i += 2;
            }
            "--idle-timeout" => {
                let Some(v) = args.get(i + 1) else {
                    eprintln!("error: --idle-timeout needs a number of seconds");
                    return ExitCode::from(1);
                };
                let Ok(secs) = v.parse::<u64>() else {
                    eprintln!("error: bad --idle-timeout `{v}`");
                    return ExitCode::from(1);
                };
                idle_timeout = Some(std::time::Duration::from_secs(secs));
                i += 2;
            }
            other => {
                eprintln!("error: unknown serve option `{other}`");
                return ExitCode::from(1);
            }
        }
    }
    let mut server = taintvp::serve::Server::new().with_idle_timeout(idle_timeout);
    let mut metrics_server = None;
    if let Some(addr) = metrics_addr {
        let metrics = std::sync::Arc::new(taintvp::serve::ServeMetrics::new());
        let render_hub = std::sync::Arc::clone(&metrics);
        match taintvp::obs::MetricsServer::bind(
            &addr,
            std::sync::Arc::new(move || render_hub.render()),
        ) {
            Ok(ms) => {
                eprintln!("taintvp-serve metrics endpoint on http://{}/metrics", ms.local_addr());
                metrics_server = Some(ms);
            }
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::from(1);
            }
        }
        server = server.with_metrics(metrics);
    }
    let result = match tcp {
        Some(addr) => server.serve_tcp(&addr),
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            server.serve(stdin.lock(), stdout.lock())
        }
    };
    if let Some(ms) = metrics_server {
        ms.shutdown();
    }
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: serve transport failed: {e}");
            ExitCode::from(1)
        }
    }
}

/// `taintvp-run client [--script file] [--tcp addr]` — drive a server:
/// request lines come from the script file (or stdin), every server line
/// is printed to stdout. Without `--tcp` a `serve` child is spawned and
/// driven over its stdio.
fn client_main(args: &[String]) -> ExitCode {
    let mut script = None;
    let mut tcp = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--script" => {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("error: --script needs a file");
                    return ExitCode::from(1);
                };
                script = Some(path.clone());
                i += 2;
            }
            "--tcp" => {
                let Some(addr) = args.get(i + 1) else {
                    eprintln!("error: --tcp needs an address");
                    return ExitCode::from(1);
                };
                tcp = Some(addr.clone());
                i += 2;
            }
            other => {
                eprintln!("error: unknown client option `{other}`");
                return ExitCode::from(1);
            }
        }
    }
    let requests: Vec<String> = match &script {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => text.lines().map(str::to_owned).collect(),
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::from(1);
            }
        },
        None => {
            use std::io::BufRead as _;
            std::io::stdin().lock().lines().map_while(Result::ok).collect()
        }
    };
    match run_client(&requests, tcp.as_deref()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: client transport failed: {e}");
            ExitCode::from(1)
        }
    }
}

/// Sends `requests` line-by-line and echoes every server line to stdout.
/// A reader thread drains the server side so large streams cannot
/// deadlock the write pipe.
fn run_client(requests: &[String], tcp: Option<&str>) -> std::io::Result<()> {
    use std::io::{BufRead as _, BufReader, Write as _};

    fn pump<R: std::io::Read + Send + 'static>(r: R) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            for line in BufReader::new(r).lines().map_while(Result::ok) {
                println!("{line}");
            }
        })
    }

    match tcp {
        Some(addr) => {
            let stream = std::net::TcpStream::connect(addr)?;
            let reader = pump(stream.try_clone()?);
            let mut writer = stream;
            for line in requests {
                writeln!(writer, "{line}")?;
            }
            writer.flush()?;
            writer.shutdown(std::net::Shutdown::Write)?;
            let _ = reader.join();
        }
        None => {
            let exe = std::env::current_exe()?;
            let mut child = std::process::Command::new(exe)
                .arg("serve")
                .stdin(std::process::Stdio::piped())
                .stdout(std::process::Stdio::piped())
                .spawn()?;
            let reader = pump(child.stdout.take().expect("piped stdout"));
            {
                let mut stdin = child.stdin.take().expect("piped stdin");
                for line in requests {
                    writeln!(stdin, "{line}")?;
                }
                stdin.flush()?;
                // Dropping stdin closes the pipe: a script without a
                // `shutdown` request still terminates the server via EOF.
            }
            let _ = child.wait()?;
            let _ = reader.join();
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.first().map(String::as_str) {
        Some("serve") => return serve_main(&argv[1..]),
        Some("client") => return client_main(&argv[1..]),
        Some("fleet") => return fleet_main(&argv[1..]),
        _ => {}
    }
    let mut opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let bytes = match std::fs::read(&opts.program) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.program);
            return ExitCode::from(1);
        }
    };
    let guest = if is_elf(&bytes) {
        let elf = match Elf32::parse(&bytes) {
            Ok(e) => e,
            Err(e) => {
                eprintln!("error: {}: {e}", opts.program);
                return ExitCode::from(EXIT_LOADER);
            }
        };
        if let Some(&(idx, _)) =
            opts.taint_segments.iter().find(|(idx, _)| *idx >= elf.segments.len())
        {
            eprintln!(
                "error: --taint-segment {idx}: binary has {} loadable segment(s)",
                elf.segments.len()
            );
            return ExitCode::from(1);
        }
        let program = match elf.to_program() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: {}: {e}", opts.program);
                return ExitCode::from(EXIT_LOADER);
            }
        };
        Guest::Elf { elf, program }
    } else {
        if !opts.taint_segments.is_empty() {
            eprintln!("error: --taint-segment only applies to ELF guests");
            return ExitCode::from(1);
        }
        let source = match String::from_utf8(bytes) {
            Ok(s) => s,
            Err(_) => {
                eprintln!("error: {}: not an ELF image and not UTF-8 assembly", opts.program);
                return ExitCode::from(EXIT_LOADER);
            }
        };
        match parse_asm(&source, 0) {
            Ok(p) => Guest::Asm(p),
            Err(e) => {
                eprintln!("error: {}: {e}", opts.program);
                return ExitCode::from(1);
            }
        }
    };
    if let Some(path) = &opts.policy {
        match std::fs::read_to_string(path) {
            Ok(text) => opts.exec.policy = Some(text),
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::from(1);
            }
        }
    }
    // One validation pass for the whole flag surface (policy text
    // included); `run_vp` resolves the same config again per run.
    let atoms = match opts.exec.resolve() {
        Ok((_, atoms)) => atoms,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(1);
        }
    };
    if opts.exec.tainted {
        run::<Tainted>(&opts, &atoms, &guest)
    } else {
        run::<Plain>(&opts, &atoms, &guest)
    }
}
