//! `taintvp-run` — run an assembly program on the virtual prototype from
//! the command line.
//!
//! ```text
//! taintvp-run <program.s> [options]
//!
//!   --policy <file>     textual security policy (see vpdift_core::textpolicy)
//!   --plain             run on the original VP (no taint tracking)
//!   --record            log violations instead of stopping at the first
//!   --input <string>    bytes fed to the terminal (supports \n, \xNN)
//!   --max-insns <n>     instruction budget (default 100M)
//!   --trace <n>         print the first n executed instructions
//!   --dump-uart-hex     print UART output as hex instead of text
//! ```
//!
//! Exit status: 0 = guest reached `ebreak` cleanly, 2 = DIFT violation,
//! 3 = other abnormal exit, 1 = usage/tooling error.

use std::process::ExitCode;

use taintvp::asm::{parse_asm, Insn};
use taintvp::core::{parse_policy, AtomTable, EnforceMode, SecurityPolicy};
use taintvp::rv32::{Plain, Tainted};
use taintvp::soc::{Soc, SocConfig, SocExit};

struct Options {
    program: String,
    policy: Option<String>,
    plain: bool,
    record: bool,
    input: Vec<u8>,
    max_insns: u64,
    trace: u64,
    uart_hex: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: taintvp-run <program.s> [--policy file] [--plain] [--record] \
         [--input str] [--max-insns n] [--trace n] [--dump-uart-hex]"
    );
    ExitCode::from(1)
}

fn unescape(s: &str) -> Result<Vec<u8>, String> {
    let mut out = Vec::new();
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'\\' && i + 1 < bytes.len() {
            match bytes[i + 1] {
                b'n' => {
                    out.push(b'\n');
                    i += 2;
                }
                b't' => {
                    out.push(b'\t');
                    i += 2;
                }
                b'0' => {
                    out.push(0);
                    i += 2;
                }
                b'\\' => {
                    out.push(b'\\');
                    i += 2;
                }
                b'x' => {
                    let hex = s
                        .get(i + 2..i + 4)
                        .ok_or_else(|| "truncated \\x escape".to_owned())?;
                    let v = u8::from_str_radix(hex, 16)
                        .map_err(|_| format!("bad \\x escape `{hex}`"))?;
                    out.push(v);
                    i += 4;
                }
                other => return Err(format!("unknown escape `\\{}`", other as char)),
            }
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    Ok(out)
}

fn parse_args() -> Result<Options, String> {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        program: String::new(),
        policy: None,
        plain: false,
        record: false,
        input: Vec::new(),
        max_insns: 100_000_000,
        trace: 0,
        uart_hex: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--policy" => opts.policy = Some(args.next().ok_or("--policy needs a file")?),
            "--plain" => opts.plain = true,
            "--record" => opts.record = true,
            "--input" => {
                let s = args.next().ok_or("--input needs a string")?;
                opts.input = unescape(&s)?;
            }
            "--max-insns" => {
                opts.max_insns = args
                    .next()
                    .ok_or("--max-insns needs a number")?
                    .parse()
                    .map_err(|_| "bad --max-insns value".to_owned())?;
            }
            "--trace" => {
                opts.trace = args
                    .next()
                    .ok_or("--trace needs a count")?
                    .parse()
                    .map_err(|_| "bad --trace value".to_owned())?;
            }
            "--dump-uart-hex" => opts.uart_hex = true,
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            other if opts.program.is_empty() => opts.program = other.to_owned(),
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    if opts.program.is_empty() {
        return Err("missing program file".into());
    }
    Ok(opts)
}

fn describe_exit(exit: &SocExit, atoms: &AtomTable) -> (&'static str, u8) {
    match exit {
        SocExit::Break => ("clean exit (ebreak)", 0),
        SocExit::Violation(v) => {
            eprintln!(
                "DIFT violation: {} — data tag [{}], required clearance [{}]{}",
                v.kind,
                atoms.describe(v.tag),
                atoms.describe(v.required),
                v.pc.map(|pc| format!(", pc={pc:#010x}")).unwrap_or_default()
            );
            ("stopped by the DIFT engine", 2)
        }
        SocExit::InstrLimit => ("instruction budget exhausted", 3),
        SocExit::Idle => ("deadlocked in wfi", 3),
    }
}

fn run<M: taintvp::rv32::TaintMode>(
    opts: &Options,
    policy: SecurityPolicy,
    atoms: &AtomTable,
    program: &taintvp::asm::Program,
) -> ExitCode {
    let mut cfg = SocConfig::with_policy(policy);
    if opts.record {
        cfg.enforce = EnforceMode::Record;
    }
    let mut soc = Soc::<M>::new(cfg);
    soc.load_program(program);
    soc.terminal().borrow_mut().feed(&opts.input);

    // Optional instruction trace (single-stepped prefix).
    let mut remaining = opts.max_insns;
    for _ in 0..opts.trace.min(remaining) {
        let pc = soc.cpu().pc();
        let word = soc.ram().borrow().load(pc, 4).0;
        let text = Insn::decode(word)
            .map(|i| i.to_string())
            .unwrap_or_else(|_| format!(".word {word:#010x}"));
        let exit = soc.run(1);
        eprintln!("[{:>8}] {pc:#010x}: {text}", soc.instret());
        remaining = remaining.saturating_sub(1);
        if !matches!(exit, SocExit::InstrLimit) {
            return finish(&exit, soc, opts, atoms);
        }
    }
    let exit = soc.run(remaining);
    finish(&exit, soc, opts, atoms)
}

fn finish<M: taintvp::rv32::TaintMode>(
    exit: &SocExit,
    soc: Soc<M>,
    opts: &Options,
    atoms: &AtomTable,
) -> ExitCode {
    let uart = soc.uart().borrow().output().to_vec();
    if opts.uart_hex {
        let hex: Vec<String> = uart.iter().map(|b| format!("{b:02x}")).collect();
        println!("uart[{}]: {}", uart.len(), hex.join(" "));
    } else {
        print!("{}", String::from_utf8_lossy(&uart));
    }
    let engine = soc.engine().borrow();
    for v in engine.violations() {
        eprintln!("recorded violation: {v}");
    }
    let (what, code) = describe_exit(exit, atoms);
    eprintln!(
        "== {what}: {} instructions, {} simulated, {} violations recorded",
        soc.instret(),
        soc.now(),
        engine.violations().len()
    );
    ExitCode::from(code)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    let source = match std::fs::read_to_string(&opts.program) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot read {}: {e}", opts.program);
            return ExitCode::from(1);
        }
    };
    let program = match parse_asm(&source, 0) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {}: {e}", opts.program);
            return ExitCode::from(1);
        }
    };
    let (policy, atoms) = match &opts.policy {
        None => (SecurityPolicy::permissive(), AtomTable::default()),
        Some(path) => match std::fs::read_to_string(path) {
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::from(1);
            }
            Ok(text) => match parse_policy(&text) {
                Ok(pair) => pair,
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::from(1);
                }
            },
        },
    };
    if opts.plain {
        run::<Plain>(&opts, policy, &atoms, &program)
    } else {
        run::<Tainted>(&opts, policy, &atoms, &program)
    }
}
