//! Emits a small demo RV32 ELF binary for exercising the external-binary
//! path (`taintvp-run <file>.elf`) without a cross toolchain: the guest is
//! built with the in-tree assembler and serialised via `Asm::to_elf`.
//!
//! Usage: `mkelf-demo [out.elf]` (default `demo.elf`).
//!
//! The guest has two symbols (`main`, `emit`) so `--profile`/`--explain`
//! have names to attribute, prints 40 dots on the UART, and exits with a
//! clean `ebreak` — the same shape docs/LOADER.md walks through.

use taintvp::asm::{Asm, Reg};

fn main() -> std::process::ExitCode {
    let out = std::env::args().nth(1).unwrap_or_else(|| "demo.elf".into());

    let mut a = Asm::new(0);
    a.label("main");
    a.entry();
    a.li(Reg::S0, 40);
    a.label("work");
    a.call("emit");
    a.addi(Reg::S0, Reg::S0, -1);
    a.bnez(Reg::S0, "work");
    a.ebreak();
    a.label("emit");
    a.li(Reg::T0, 0x1000_0000u32 as i32); // UART tx register
    a.li(Reg::T1, b'.' as i32);
    a.sw(Reg::T1, 0, Reg::T0);
    a.ret();

    let bytes = match a.to_elf() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("error: demo guest failed to assemble: {e}");
            return std::process::ExitCode::from(1);
        }
    };
    if let Err(e) = std::fs::write(&out, &bytes) {
        eprintln!("error: cannot write {out}: {e}");
        return std::process::ExitCode::from(1);
    }
    eprintln!("wrote {out} ({} bytes, entry 0x0)", bytes.len());
    std::process::ExitCode::SUCCESS
}
