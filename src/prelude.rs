//! The stable facade: one `use taintvp::prelude::*;` brings in everything
//! a typical embedding needs — SoC construction, taint primitives, policy
//! authoring, observability sinks and the fault-campaign entry points —
//! without memorising which workspace crate owns what.
//!
//! Items here are the supported API surface; reach into the per-subsystem
//! modules (`taintvp::rv32`, `taintvp::obs`, …) only for internals that
//! may move between releases.
//!
//! ```
//! use taintvp::prelude::*;
//!
//! let cfg = Soc::<Tainted>::builder()
//!     .policy(SecurityPolicy::permissive())
//!     .engine(ExecMode::BlockCache)
//!     .build();
//! let soc = Soc::<Tainted>::new(cfg);
//! assert_eq!(soc.instret(), 0);
//! ```

// SoC construction and execution. `ExecConfig` is the one parse/validate
// path for mode/engine/enforce/quantum/ram_size/policy shared by the CLI,
// the serve layer, and the fleet.
pub use vpdift_soc::{
    map, ExecConfig, ExecConfigError, ExecMode, PlainSoc, Soc, SocBuilder, SocConfig, SocExit,
    TaintedSoc,
};

// Execution modes of the CPU type parameter.
pub use vpdift_rv32::{Plain, TaintMode, Tainted};

// Taint primitives and policy authoring.
pub use vpdift_core::{
    parse_policy, EnforceMode, SecurityPolicy, SecurityPolicyBuilder, Tag, Taint, Violation,
    ViolationKind,
};

// Observability sinks, live streaming, and run-control handles.
pub use vpdift_obs::{
    shared_obs, BreakKind, BreakSet, Metrics, NullSink, ObsEvent, ObsSink, Recorder, SharedObs,
    StopFlag, StreamItem, StreamSink, WatchKind,
};

// The live introspection server: client-facing protocol types (error
// codes, request/response shapes, version negotiation) plus the session
// registry that makes concurrent connections possible.
pub use vpdift_serve::{
    ByteRead, Connection, Control, CreateOpts, ErrorCode, RegRead, Registry, ServeError, Server,
    Session, Version, SCHEMA, SCHEMA_V2,
};

// Fault-injection campaigns.
pub use vpdift_faults::{
    classify, generate_plan, run_campaign, run_with_faults, CampaignConfig, CampaignReport,
    FaultKind, Outcome, PlannedFault,
};

// Guest program authoring.
pub use vpdift_asm::{Asm, Program, Reg};

/// Shared-handle primitives (the workspace replacement for `Rc<RefCell<T>>`).
pub use vpdift_sync::{shared, MutCell, Shared};
